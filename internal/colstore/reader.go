package colstore

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
)

// Scan streams the file's site blocks in file order, calling fn for each
// decoded block, and returns the decoded footer index. It needs only
// sequential access — each block is self-contained — so it works on pipes
// and HTTP bodies; memory is bounded by the largest single block. A
// non-nil error from fn aborts the scan and is returned verbatim.
func Scan(r io.Reader, fn func(*SiteBlock) error) (*Index, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 1<<16)
	}
	hdr := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("colstore: read header: %w", err)
	}
	if string(hdr) != Magic {
		return nil, fmt.Errorf("colstore: bad header magic %q (not a columnar dataset)", hdr)
	}
	magic := make([]byte, len(blockMagic))
	for {
		if _, err := io.ReadFull(br, magic); err != nil {
			return nil, fmt.Errorf("colstore: read record magic: %w", err)
		}
		switch string(magic) {
		case blockMagic:
			payload, err := readRecordBody(br, "block")
			if err != nil {
				return nil, err
			}
			sb, err := decodeBlock(payload)
			if err != nil {
				return nil, err
			}
			if err := fn(sb); err != nil {
				return nil, err
			}
		case indexMagic:
			payload, err := readRecordBody(br, "index")
			if err != nil {
				return nil, err
			}
			idx, err := decodeIndex(payload)
			if err != nil {
				return nil, err
			}
			tail := make([]byte, 8+len(tailMagic))
			if _, err := io.ReadFull(br, tail); err != nil {
				return nil, fmt.Errorf("colstore: read tail: %w", err)
			}
			if string(tail[8:]) != tailMagic {
				return nil, fmt.Errorf("colstore: bad tail magic %q", tail[8:])
			}
			return idx, nil
		default:
			return nil, fmt.Errorf("colstore: unknown record magic %q", magic)
		}
	}
}

// readRecordBody reads uvarint(len) + payload + crc32 and verifies the
// checksum.
func readRecordBody(br *bufio.Reader, what string) ([]byte, error) {
	n, err := readUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("colstore: read %s length: %w", what, err)
	}
	if n > maxRecordLen {
		return nil, fmt.Errorf("colstore: %s record of %d bytes exceeds the %d-byte limit (corrupt length?)", what, n, maxRecordLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("colstore: read %s payload (%d bytes): %w", what, n, err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(br, crc[:]); err != nil {
		return nil, fmt.Errorf("colstore: read %s checksum: %w", what, err)
	}
	if err := verifyCRC(crc[:], payload, what); err != nil {
		return nil, err
	}
	return payload, nil
}

func verifyCRC(crc, payload []byte, what string) error {
	want := uint32(crc[0]) | uint32(crc[1])<<8 | uint32(crc[2])<<16 | uint32(crc[3])<<24
	if got := crc32.ChecksumIEEE(payload); got != want {
		return fmt.Errorf("colstore: %s checksum mismatch (got %08x, want %08x): corrupted record", what, got, want)
	}
	return nil
}

// readUvarint reads a varint without over-reading past it.
func readUvarint(br io.ByteReader) (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, fmt.Errorf("varint overflows uint64")
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}

func decodeIndex(payload []byte) (*Index, error) {
	c := &cur{b: payload}
	idx := &Index{Schema: int(c.uvarint())}
	if c.err == nil && idx.Schema != SchemaVersion {
		return nil, fmt.Errorf("colstore: index schema %d, want %d", idx.Schema, SchemaVersion)
	}
	nb := c.count("index block")
	if c.err != nil {
		return nil, c.err
	}
	idx.Blocks = make([]BlockMeta, nb)
	for i := range idx.Blocks {
		b := &idx.Blocks[i]
		b.Site = c.str()
		b.Offset = c.uvarint()
		b.Length = c.uvarint()
		b.Visits = int(c.uvarint())
		np := c.count("index page")
		if c.err != nil {
			return nil, c.err
		}
		b.Pages = make([]string, np)
		for j := range b.Pages {
			b.Pages[j] = c.str()
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("colstore: index payload has %d trailing bytes", len(c.b)-c.off)
	}
	return idx, nil
}

// Reader random-accesses a columnar file through its footer index: open
// the footer once, then decode exactly the blocks you need. This is the
// shard-worker path — the index carries each block's page list, so a
// worker seeks straight to the blocks holding its pages and never touches
// the rest of the file.
type Reader struct {
	ra  io.ReaderAt
	idx *Index
}

// OpenReader validates the header and tail and decodes the footer index.
func OpenReader(ra io.ReaderAt, size int64) (*Reader, error) {
	minLen := int64(len(Magic) + 8 + len(tailMagic))
	if size < minLen {
		return nil, fmt.Errorf("colstore: file of %d bytes is shorter than the %d-byte envelope", size, minLen)
	}
	hdr := make([]byte, len(Magic))
	if _, err := ra.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("colstore: read header: %w", err)
	}
	if string(hdr) != Magic {
		return nil, fmt.Errorf("colstore: bad header magic %q (not a columnar dataset)", hdr)
	}
	tail := make([]byte, 8+len(tailMagic))
	if _, err := ra.ReadAt(tail, size-int64(len(tail))); err != nil {
		return nil, fmt.Errorf("colstore: read tail: %w", err)
	}
	if string(tail[8:]) != tailMagic {
		return nil, fmt.Errorf("colstore: bad tail magic %q (truncated file?)", tail[8:])
	}
	indexOff := int64(uint64(tail[0]) | uint64(tail[1])<<8 | uint64(tail[2])<<16 | uint64(tail[3])<<24 |
		uint64(tail[4])<<32 | uint64(tail[5])<<40 | uint64(tail[6])<<48 | uint64(tail[7])<<56)
	if indexOff < int64(len(Magic)) || indexOff >= size-int64(len(tail)) {
		return nil, fmt.Errorf("colstore: index offset %d outside file of %d bytes", indexOff, size)
	}
	payload, err := readRecordAt(ra, indexOff, size, indexMagic, "index")
	if err != nil {
		return nil, err
	}
	idx, err := decodeIndex(payload)
	if err != nil {
		return nil, err
	}
	return &Reader{ra: ra, idx: idx}, nil
}

// Index returns the footer index. Callers must not modify it.
func (r *Reader) Index() *Index { return r.idx }

// Block seeks to and decodes block i.
func (r *Reader) Block(i int) (*SiteBlock, error) {
	if i < 0 || i >= len(r.idx.Blocks) {
		return nil, fmt.Errorf("colstore: block %d out of range (%d blocks)", i, len(r.idx.Blocks))
	}
	meta := r.idx.Blocks[i]
	payload, err := readRecordAt(r.ra, int64(meta.Offset), int64(meta.Offset+meta.Length), blockMagic, "block")
	if err != nil {
		return nil, fmt.Errorf("colstore: site %q: %w", meta.Site, err)
	}
	sb, err := decodeBlock(payload)
	if err != nil {
		return nil, fmt.Errorf("colstore: site %q: %w", meta.Site, err)
	}
	if sb.Site != meta.Site {
		return nil, fmt.Errorf("colstore: block %d decodes site %q but the index says %q", i, sb.Site, meta.Site)
	}
	return sb, nil
}

// readRecordAt reads and verifies one record starting at off, bounded by
// limit (exclusive).
func readRecordAt(ra io.ReaderAt, off, limit int64, wantMagic, what string) ([]byte, error) {
	// Magic + maximal varint length header.
	hdr := make([]byte, len(wantMagic)+10)
	if int64(len(hdr)) > limit-off {
		hdr = hdr[:limit-off]
	}
	if _, err := ra.ReadAt(hdr, off); err != nil {
		return nil, fmt.Errorf("colstore: read %s record at %d: %w", what, off, err)
	}
	if len(hdr) < len(wantMagic) || string(hdr[:len(wantMagic)]) != wantMagic {
		return nil, fmt.Errorf("colstore: bad %s record magic at offset %d", what, off)
	}
	n, used := uvarintFrom(hdr[len(wantMagic):])
	if used <= 0 {
		return nil, fmt.Errorf("colstore: truncated %s record length at offset %d", what, off)
	}
	if n > maxRecordLen {
		return nil, fmt.Errorf("colstore: %s record of %d bytes exceeds the %d-byte limit (corrupt length?)", what, n, maxRecordLen)
	}
	bodyOff := off + int64(len(wantMagic)) + int64(used)
	if bodyOff+int64(n)+4 > limit {
		return nil, fmt.Errorf("colstore: %s record of %d bytes overruns its %d-byte bound", what, n, limit-off)
	}
	body := make([]byte, n+4)
	if _, err := ra.ReadAt(body, bodyOff); err != nil {
		return nil, fmt.Errorf("colstore: read %s payload at %d: %w", what, bodyOff, err)
	}
	payload := body[:n]
	if err := verifyCRC(body[n:], payload, what); err != nil {
		return nil, err
	}
	return payload, nil
}

// uvarintFrom decodes a uvarint from b, returning (value, bytes used);
// used <= 0 means truncated.
func uvarintFrom(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, c := range b {
		if shift >= 64 {
			return 0, -1
		}
		v |= uint64(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// DecodeBlockPayload decodes one raw block payload — exported for the
// fuzz target so corrupted payloads can be thrown at the decoder without
// the record envelope's CRC rejecting them first.
func DecodeBlockPayload(payload []byte) (*SiteBlock, error) {
	return decodeBlock(payload)
}

// EncodeBlockPayload encodes one site's rows as a raw block payload —
// the fuzz seed generator and tests use it to produce valid payloads.
func EncodeBlockPayload(site string, rows []VisitRow) []byte {
	return encodeBlock(site, rows)
}

// Sniff reports whether the first bytes look like a columnar file. It
// needs at least len(Magic) bytes; shorter prefixes report false.
func Sniff(prefix []byte) bool {
	return len(prefix) >= len(Magic) && bytes.Equal(prefix[:len(Magic)], []byte(Magic))
}
