// Package colstore implements the compact columnar binary format for
// page-visit datasets — the storage layer a field-scale measurement study
// needs once JSONL decode starts dominating analyze wall time. The format
// is built around the access pattern of the paper's setup-similarity
// analysis, which only ever needs one site's visits in memory at a time:
//
//	file   := header block* index tail
//	header := "WMCOL01\n"                          (8 bytes, version in magic)
//	block  := "BLK\n" uvarint(len) payload crc32   (one block per site)
//	index  := "IDX\n" uvarint(len) payload crc32   (footer: per-block meta)
//	tail   := uint64le(index offset) "WMCOLEND"    (16 bytes, seek anchor)
//
// Each block is self-contained: its payload opens with the site name and a
// per-block interned string table (URLs, hosts, node keys, header values),
// followed by field-major columns over the site's visits. Integer columns
// are varint encoded — monotonic ones (the global visit sequence numbers,
// per-visit request time offsets) as deltas — and every string-valued cell
// is a small table index, so a URL requested by five profiles on eleven
// pages is stored once and decoded into one shared Go string. The index
// footer records, per block, the site, byte offset, length, visit count,
// and sorted page-URL list, so a shard worker can seek straight to the
// blocks containing its pages instead of scanning the whole file.
//
// Two read paths cover the two workloads: Scan streams blocks in file
// order from any io.Reader (the site-by-site analysis pipeline), and
// OpenReader random-accesses blocks through the footer from an io.ReaderAt
// (shard workers, site-filtered loads). Both verify per-record CRCs and
// fail with clean errors on truncated or corrupted input.
package colstore

import (
	"encoding/binary"
	"fmt"
)

// Format constants. The version lives in the header magic: a reader that
// sees unknown magic bytes rejects the file instead of misparsing it.
const (
	// Magic opens every columnar dataset file ("WMCOL" + 2-digit version).
	Magic = "WMCOL01\n"
	// blockMagic opens every site block record.
	blockMagic = "BLK\n"
	// indexMagic opens the footer index record.
	indexMagic = "IDX\n"
	// tailMagic closes the file; the 8 bytes before it hold the index
	// record's offset so a ReaderAt can seek to the footer directly.
	tailMagic = "WMCOLEND"
	// SchemaVersion is the block/index payload schema, recorded in the
	// index so readers can reject payloads they do not understand.
	SchemaVersion = 1
)

// maxRecordLen bounds a single block or index record (1 GiB). A declared
// length beyond it is treated as corruption, not an allocation request.
const maxRecordLen = 1 << 30

// BlockMeta is one block's entry in the footer index.
type BlockMeta struct {
	// Site is the block's site; the footer lists blocks in ascending site
	// order regardless of the order the body was written in.
	Site string
	// Offset is the byte offset of the block record ("BLK\n") in the file.
	Offset uint64
	// Length is the full record length in bytes (magic through CRC).
	Length uint64
	// Visits is the number of visit rows in the block.
	Visits int
	// Pages lists the block's distinct page URLs in ascending order — the
	// per-site page-key range a shard worker intersects with its slice to
	// decide whether the block holds any of its pages.
	Pages []string
}

// Index is the decoded footer: the file's table of contents.
type Index struct {
	Schema int
	Blocks []BlockMeta
}

// TotalVisits sums the per-block visit counts.
func (ix *Index) TotalVisits() int {
	n := 0
	for _, b := range ix.Blocks {
		n += b.Visits
	}
	return n
}

// zigzag folds a signed int into an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// buf is an append-only encode buffer with the varint/string primitives
// the column encoders share.
type buf struct {
	b []byte
}

func (e *buf) bytes() []byte { return e.b }

func (e *buf) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

func (e *buf) varint(v int64) {
	e.b = binary.AppendUvarint(e.b, zigzag(v))
}

func (e *buf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *buf) byte(v byte) {
	e.b = append(e.b, v)
}

func (e *buf) u64le(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}

// cur is a bounds-checked decode cursor. The first malformed read latches
// err; later reads return zero values, so decoders can run straight-line
// and check the error once.
type cur struct {
	b   []byte
	off int
	err error
}

func (c *cur) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *cur) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail("colstore: truncated varint at offset %d", c.off)
		return 0
	}
	c.off += n
	return v
}

func (c *cur) varint() int64 { return unzigzag(c.uvarint()) }

// count reads a length-like varint and sanity-checks it against the bytes
// left: every counted element costs at least one encoded byte, so a count
// beyond the remainder is corruption and must not size an allocation.
func (c *cur) count(what string) int {
	v := c.uvarint()
	if c.err != nil {
		return 0
	}
	if v > uint64(len(c.b)-c.off) {
		c.fail("colstore: %s count %d exceeds remaining %d bytes", what, v, len(c.b)-c.off)
		return 0
	}
	return int(v)
}

func (c *cur) str() string {
	n := c.count("string length")
	if c.err != nil {
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

func (c *cur) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail("colstore: truncated byte column at offset %d", c.off)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cur) u64le() uint64 {
	if c.err != nil {
		return 0
	}
	if len(c.b)-c.off < 8 {
		c.fail("colstore: truncated fixed64 column at offset %d", c.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// interner assigns dense ids to strings in first-seen order; id 0 is
// always the empty string so optional fields encode as a single zero byte.
type interner struct {
	ids  map[string]uint64
	strs []string
}

func newInterner() *interner {
	return &interner{ids: map[string]uint64{"": 0}, strs: []string{""}}
}

func (in *interner) id(s string) uint64 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := uint64(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}
