package colstore

import (
	"fmt"
	"math"
	"sort"

	"webmeasure/internal/measurement"
	"webmeasure/internal/urlutil"
)

// VisitRow pairs a visit with its global sequence number — the visit's
// position in the dataset's insertion order. Blocks regroup visits by
// site, so the sequence column is what lets a full decode reconstruct the
// original order byte for byte (the JSONL round-trip guarantee).
type VisitRow struct {
	Seq   uint64
	Visit *measurement.Visit
}

// SiteBlock is one decoded site block: the site's visits (insertion
// order preserved within the site), their global sequence numbers, and
// the block's interned string table. Every string field of every decoded
// visit aliases an entry of Strings, so a URL observed by five profiles
// across eleven pages is one Go string, not fifty-five.
type SiteBlock struct {
	Site    string
	Seqs    []uint64
	Visits  []*measurement.Visit
	Strings []string
}

// KeyCache builds the pre-interned normalized-key table for the block:
// urlutil.Normalize evaluated once per distinct string, with dense int32
// key ids the tree builder indexes directly instead of re-normalizing and
// re-hashing every request of every visit.
func (sb *SiteBlock) KeyCache() *urlutil.KeyCache {
	return urlutil.BuildKeyCache(sb.Strings)
}

// Pages returns the block's distinct page URLs in ascending order.
func (sb *SiteBlock) Pages() []string {
	seen := make(map[string]bool, 16)
	var out []string
	for _, v := range sb.Visits {
		if !seen[v.PageURL] {
			seen[v.PageURL] = true
			out = append(out, v.PageURL)
		}
	}
	sort.Strings(out)
	return out
}

// encodeBlock serializes one site's visit rows as a block payload:
// site, string table, then field-major columns. The table is built while
// the columns encode (ids are first-seen order, so encoding is fully
// deterministic) and prepended afterwards.
func encodeBlock(site string, rows []VisitRow) []byte {
	in := newInterner()
	var cols buf

	// Visit-level columns.
	cols.uvarint(uint64(len(rows)))
	prevSeq := uint64(0)
	for i, r := range rows {
		if i == 0 {
			cols.uvarint(r.Seq)
		} else {
			cols.uvarint(r.Seq - prevSeq) // Writer validated ascending order
		}
		prevSeq = r.Seq
	}
	for _, r := range rows {
		cols.uvarint(in.id(r.Visit.PageURL))
	}
	for _, r := range rows {
		cols.uvarint(in.id(r.Visit.Profile))
	}
	for _, r := range rows {
		var flags byte
		if r.Visit.Success {
			flags |= 1
		}
		if r.Visit.Retryable {
			flags |= 2
		}
		cols.byte(flags)
	}
	for _, r := range rows {
		cols.uvarint(in.id(r.Visit.Status))
	}
	for _, r := range rows {
		cols.uvarint(in.id(r.Visit.Failure))
	}
	for _, r := range rows {
		cols.uvarint(in.id(r.Visit.FaultKind))
	}
	for _, r := range rows {
		cols.varint(int64(r.Visit.Attempts))
	}
	for _, r := range rows {
		cols.u64le(math.Float64bits(r.Visit.StartOffsetS))
	}
	for _, r := range rows {
		cols.varint(int64(r.Visit.DurationMS))
	}
	for _, r := range rows {
		cols.uvarint(uint64(len(r.Visit.Requests)))
	}
	for _, r := range rows {
		cols.uvarint(uint64(len(r.Visit.Cookies)))
	}

	// Request columns, flattened across visits in visit order.
	eachReq := func(fn func(req *measurement.Request)) {
		for _, r := range rows {
			for i := range r.Visit.Requests {
				fn(&r.Visit.Requests[i])
			}
		}
	}
	eachReq(func(q *measurement.Request) { cols.uvarint(in.id(q.URL)) })
	eachReq(func(q *measurement.Request) { cols.byte(byte(q.Type)) })
	eachReq(func(q *measurement.Request) { cols.varint(int64(q.FrameID)) })
	eachReq(func(q *measurement.Request) { cols.uvarint(in.id(q.FrameURL)) })
	eachReq(func(q *measurement.Request) { cols.uvarint(in.id(q.RedirectFrom)) })
	eachReq(func(q *measurement.Request) { cols.varint(int64(q.Status)) })
	eachReq(func(q *measurement.Request) { cols.uvarint(in.id(q.ContentType)) })
	eachReq(func(q *measurement.Request) { cols.varint(int64(q.BodySize)) })
	// Time offsets are nondecreasing within a visit in practice, so the
	// per-visit delta keeps them single-byte; zigzag tolerates exceptions.
	for _, r := range rows {
		prev := int64(0)
		for i := range r.Visit.Requests {
			t := int64(r.Visit.Requests[i].TimeOffsetMS)
			cols.varint(t - prev)
			prev = t
		}
	}
	eachReq(func(q *measurement.Request) { cols.uvarint(in.id(q.TrueParentURL)) })
	eachReq(func(q *measurement.Request) { cols.uvarint(uint64(len(q.CallStack))) })
	eachReq(func(q *measurement.Request) {
		for _, f := range q.CallStack {
			cols.uvarint(in.id(f.FuncName))
			cols.uvarint(in.id(f.URL))
			cols.varint(int64(f.Line))
		}
	})
	eachReq(func(q *measurement.Request) { cols.uvarint(uint64(len(q.SetCookies))) })
	eachReq(func(q *measurement.Request) {
		for _, sc := range q.SetCookies {
			cols.uvarint(in.id(sc))
		}
	})

	// Cookie columns, flattened across visits in visit order.
	eachCookie := func(fn func(c *measurement.CookieObservation)) {
		for _, r := range rows {
			for i := range r.Visit.Cookies {
				fn(&r.Visit.Cookies[i])
			}
		}
	}
	eachCookie(func(c *measurement.CookieObservation) { cols.uvarint(in.id(c.Name)) })
	eachCookie(func(c *measurement.CookieObservation) { cols.uvarint(in.id(c.Domain)) })
	eachCookie(func(c *measurement.CookieObservation) { cols.uvarint(in.id(c.Path)) })
	eachCookie(func(c *measurement.CookieObservation) { cols.uvarint(in.id(c.SameSite)) })
	eachCookie(func(c *measurement.CookieObservation) {
		var flags byte
		if c.Secure {
			flags |= 1
		}
		if c.HTTPOnly {
			flags |= 2
		}
		cols.byte(flags)
	})

	// Assemble: site, string table, columns.
	var payload buf
	payload.str(site)
	payload.uvarint(uint64(len(in.strs)))
	for _, s := range in.strs {
		payload.str(s)
	}
	payload.b = append(payload.b, cols.bytes()...)
	return payload.bytes()
}

// decodeBlock parses a block payload. Corrupted or truncated payloads
// yield an error, never a panic or an unbounded allocation.
func decodeBlock(payload []byte) (*SiteBlock, error) {
	c := &cur{b: payload}
	site := c.str()
	nstr := c.count("string table")
	if c.err != nil {
		return nil, c.err
	}
	strs := make([]string, nstr)
	for i := range strs {
		strs[i] = c.str()
	}
	lookup := func(what string) string {
		id := c.uvarint()
		if c.err != nil {
			return ""
		}
		if id >= uint64(len(strs)) {
			c.fail("colstore: %s string id %d out of range (table holds %d)", what, id, len(strs))
			return ""
		}
		return strs[id]
	}

	nv := c.count("visit")
	if c.err != nil {
		return nil, c.err
	}
	sb := &SiteBlock{
		Site:    site,
		Seqs:    make([]uint64, nv),
		Visits:  make([]*measurement.Visit, nv),
		Strings: strs,
	}
	visits := make([]measurement.Visit, nv)
	for i := range visits {
		sb.Visits[i] = &visits[i]
		visits[i].Site = site
	}
	prevSeq := uint64(0)
	for i := 0; i < nv; i++ {
		d := c.uvarint()
		if i == 0 {
			prevSeq = d
		} else {
			prevSeq += d
		}
		sb.Seqs[i] = prevSeq
	}
	for i := 0; i < nv; i++ {
		visits[i].PageURL = lookup("page URL")
	}
	for i := 0; i < nv; i++ {
		visits[i].Profile = lookup("profile")
	}
	for i := 0; i < nv; i++ {
		flags := c.byte()
		visits[i].Success = flags&1 != 0
		visits[i].Retryable = flags&2 != 0
	}
	for i := 0; i < nv; i++ {
		visits[i].Status = lookup("status")
	}
	for i := 0; i < nv; i++ {
		visits[i].Failure = lookup("failure")
	}
	for i := 0; i < nv; i++ {
		visits[i].FaultKind = lookup("fault kind")
	}
	for i := 0; i < nv; i++ {
		visits[i].Attempts = int(c.varint())
	}
	for i := 0; i < nv; i++ {
		visits[i].StartOffsetS = math.Float64frombits(c.u64le())
	}
	for i := 0; i < nv; i++ {
		visits[i].DurationMS = int(c.varint())
	}
	for i := 0; i < nv; i++ {
		if n := c.count("request"); n > 0 {
			visits[i].Requests = make([]measurement.Request, n)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	for i := 0; i < nv; i++ {
		if n := c.count("cookie"); n > 0 {
			visits[i].Cookies = make([]measurement.CookieObservation, n)
		}
	}
	if c.err != nil {
		return nil, c.err
	}

	eachReq := func(fn func(q *measurement.Request)) {
		for i := range visits {
			for j := range visits[i].Requests {
				if c.err != nil {
					return
				}
				fn(&visits[i].Requests[j])
			}
		}
	}
	eachReq(func(q *measurement.Request) { q.URL = lookup("request URL") })
	eachReq(func(q *measurement.Request) { q.Type = measurement.ResourceType(c.byte()) })
	eachReq(func(q *measurement.Request) { q.FrameID = int(c.varint()) })
	eachReq(func(q *measurement.Request) { q.FrameURL = lookup("frame URL") })
	eachReq(func(q *measurement.Request) { q.RedirectFrom = lookup("redirect source") })
	eachReq(func(q *measurement.Request) { q.Status = int(c.varint()) })
	eachReq(func(q *measurement.Request) { q.ContentType = lookup("content type") })
	eachReq(func(q *measurement.Request) { q.BodySize = int(c.varint()) })
	for i := range visits {
		prev := int64(0)
		for j := range visits[i].Requests {
			prev += c.varint()
			visits[i].Requests[j].TimeOffsetMS = int(prev)
		}
	}
	eachReq(func(q *measurement.Request) { q.TrueParentURL = lookup("true parent URL") })
	eachReq(func(q *measurement.Request) {
		if n := c.count("call stack"); n > 0 {
			q.CallStack = make([]measurement.StackFrame, n)
		}
	})
	eachReq(func(q *measurement.Request) {
		for k := range q.CallStack {
			q.CallStack[k].FuncName = lookup("stack function")
			q.CallStack[k].URL = lookup("stack URL")
			q.CallStack[k].Line = int(c.varint())
		}
	})
	eachReq(func(q *measurement.Request) {
		if n := c.count("set-cookie"); n > 0 {
			q.SetCookies = make([]string, n)
		}
	})
	eachReq(func(q *measurement.Request) {
		for k := range q.SetCookies {
			q.SetCookies[k] = lookup("set-cookie header")
		}
	})

	eachCookie := func(fn func(ck *measurement.CookieObservation)) {
		for i := range visits {
			for j := range visits[i].Cookies {
				if c.err != nil {
					return
				}
				fn(&visits[i].Cookies[j])
			}
		}
	}
	eachCookie(func(ck *measurement.CookieObservation) { ck.Name = lookup("cookie name") })
	eachCookie(func(ck *measurement.CookieObservation) { ck.Domain = lookup("cookie domain") })
	eachCookie(func(ck *measurement.CookieObservation) { ck.Path = lookup("cookie path") })
	eachCookie(func(ck *measurement.CookieObservation) { ck.SameSite = lookup("cookie samesite") })
	eachCookie(func(ck *measurement.CookieObservation) {
		flags := c.byte()
		ck.Secure = flags&1 != 0
		ck.HTTPOnly = flags&2 != 0
	})

	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(c.b) {
		return nil, fmt.Errorf("colstore: block payload has %d trailing bytes", len(c.b)-c.off)
	}
	return sb, nil
}
