package crawler

import (
	"webmeasure/internal/measurement"
	"webmeasure/internal/metrics"
	"webmeasure/internal/trace"
)

// siteResult is one worker's finished site: everything the site produced
// on isolated scratch state, ready to be folded into the run's shared
// state by the sequencer. Emission order — not completion order — defines
// the dataset's insertion order, the metrics merge order, and the trace
// import order, which is what makes every site-worker count produce the
// same bytes.
type siteResult struct {
	// index is the site's position in Config.Sites.
	index int
	// site is the generated domain (empty when err is set).
	site string
	// skipped marks a site none of whose pages passed PageFilter; it
	// contributes nothing — no visits, no stats, no metrics samples.
	skipped bool
	// visits holds the site's recorded visits in canonical order: kept
	// pages in discovery order, profiles in configuration order within
	// each page.
	visits []*measurement.Visit
	// stats is the site's contribution to the run totals.
	stats Stats
	// dump is the site's scratch metrics registry, merged into
	// Config.Metrics at emission (exact integer sums for counters).
	dump metrics.Dump
	// traces is the site's scratch tracer export, imported at emission.
	traces []trace.TraceData
	// err aborts the run when the site could not be crawled.
	err error
}

// sequencer reorders out-of-order site completions back into site-list
// order. Workers finish sites in scheduling-dependent order; offer hands
// each finished site in, and emit fires exactly once per site, strictly
// in index order, as soon as the next expected index is available. The
// caller bounds how far completions may run ahead (the reorder window),
// so pending never grows past that window.
type sequencer struct {
	next    int
	pending map[int]*siteResult
	emit    func(*siteResult) error
}

func newSequencer(emit func(*siteResult) error) *sequencer {
	return &sequencer{pending: make(map[int]*siteResult), emit: emit}
}

// offer hands the sequencer a completed site and emits any newly
// contiguous run. The first emit error stops the emission loop and is
// returned; already-buffered later sites stay pending.
func (s *sequencer) offer(r *siteResult) error {
	s.pending[r.index] = r
	for {
		rr, ok := s.pending[s.next]
		if !ok {
			return nil
		}
		delete(s.pending, s.next)
		s.next++
		if err := s.emit(rr); err != nil {
			return err
		}
	}
}
