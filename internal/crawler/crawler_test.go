package crawler

import (
	"context"
	"testing"

	"webmeasure/internal/browser"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func smallCrawl(t *testing.T, nSites int, seed int64) ( //nolint:unparam
	cfg Config) {
	t.Helper()
	u := webgen.New(webgen.DefaultConfig(seed))
	list := tranco.Generate(nSites, seed)
	return Config{
		Universe:  u,
		Sites:     list.Entries(),
		MaxPages:  5,
		Instances: 4,
		Seed:      seed,
	}
}

func TestRunBasics(t *testing.T) {
	cfg := smallCrawl(t, 12, 1)
	ds, stats, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SitesVisited != 12 {
		t.Errorf("sites = %d", stats.SitesVisited)
	}
	if stats.VisitsTotal != ds.Len() {
		t.Errorf("stats total %d != dataset %d", stats.VisitsTotal, ds.Len())
	}
	// Every page gets exactly five profile visits.
	for _, pv := range ds.Pages() {
		if len(pv.ByProfile) != 5 {
			t.Fatalf("page %v has %d profiles", pv.Key, len(pv.ByProfile))
		}
	}
	if got := ds.Profiles(); len(got) != 5 {
		t.Errorf("profiles = %v", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, _, err := Run(context.Background(), smallCrawl(t, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(context.Background(), smallCrawl(t, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lens differ: %d vs %d", a.Len(), b.Len())
	}
	pa, pb := a.Pages(), b.Pages()
	for i := range pa {
		for prof, va := range pa[i].ByProfile {
			vb := pb[i].ByProfile[prof]
			if va.Success != vb.Success || len(va.Requests) != len(vb.Requests) {
				t.Fatalf("page %v profile %s differs", pa[i].Key, prof)
			}
		}
	}
}

func TestSuccessRatesInPaperBand(t *testing.T) {
	cfg := smallCrawl(t, 40, 7)
	cfg.MaxPages = 8
	ds, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Profiles() {
		r := ds.SuccessRate(p)
		// Paper: each profile succeeds on ≥89% of pages (≥88% here for
		// sampling noise at small scale).
		if r < 0.82 || r > 0.97 {
			t.Errorf("profile %s success rate %.3f outside [0.82, 0.97]", p, r)
		}
	}
	// Vetting drops a substantial share but keeps most pages (paper: 55%
	// of pages survive all-profile vetting).
	vetted := len(ds.VettedPages(ds.Profiles()))
	total := len(ds.Pages())
	share := float64(vetted) / float64(total)
	if share < 0.35 || share > 0.85 {
		t.Errorf("vetted share %.3f outside [0.35, 0.85] (%d/%d)", share, vetted, total)
	}
}

func TestIdenticalProfilesDiffer(t *testing.T) {
	cfg := smallCrawl(t, 8, 9)
	ds, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for _, pv := range ds.VettedPages([]string{"Sim1", "Sim2"}) {
		s1 := pv.ByProfile["Sim1"]
		s2 := pv.ByProfile["Sim2"]
		urls := map[string]bool{}
		for _, r := range s1.Requests {
			urls[r.URL] = true
		}
		for _, r := range s2.Requests {
			if !urls[r.URL] {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("identical profiles never observed different URLs — the central phenomenon is dead")
	}
}

func TestUnreachableSitesFailEverywhere(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(5))
	// Find an unreachable site by scanning.
	var entry tranco.Entry
	found := false
	for i := 1; i <= 500 && !found; i++ {
		e := tranco.Entry{Rank: i, Site: siteName(i)}
		if u.GenerateSite(e).Unreachable {
			entry, found = e, true
		}
	}
	if !found {
		t.Skip("no unreachable site in scan range")
	}
	ds, _, err := Run(context.Background(), Config{
		Universe: u, Sites: []tranco.Entry{entry}, MaxPages: 3, Instances: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.Visits() {
		if v.Success {
			t.Fatalf("visit to unreachable site succeeded: %+v", v)
		}
	}
}

func siteName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string(letters[i%26]) + string(letters[(i/26)%26]) + "-unreach.example"
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallCrawl(t, 5, 1)
	_, _, err := Run(ctx, cfg)
	if err == nil {
		t.Error("cancelled context should abort the crawl")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("missing universe should error")
	}
	u := webgen.New(webgen.DefaultConfig(1))
	if _, _, err := Run(context.Background(), Config{Universe: u}); err == nil {
		t.Error("missing sites should error")
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := smallCrawl(t, 4, 2)
	var calls []int
	cfg.Progress = func(done, total int) {
		if total != 4 {
			t.Errorf("total = %d", total)
		}
		calls = append(calls, done)
	}
	if _, _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 || calls[3] != 4 {
		t.Errorf("progress calls = %v", calls)
	}
}

func TestCustomProfiles(t *testing.T) {
	cfg := smallCrawl(t, 3, 11)
	cfg.Profiles = browser.DefaultProfiles()[:2]
	ds, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Profiles(); len(got) != 2 {
		t.Errorf("profiles = %v", got)
	}
}
