// Package crawler orchestrates the semi-parallel measurement (§3.1,
// Appendix C): a commander hands each site to every profile's client
// ("VM") simultaneously and waits until all clients finished the site's
// pages before moving on — site visits are synchronized, page visits are
// not. Each client runs a pool of browser instances, enforces the page
// timeout, and suffers injected network-level failures so the per-profile
// success rate matches the paper's (≥89%).
//
// Sites themselves are crawled by a bounded worker pool (Config.
// SiteWorkers): each worker runs one site's whole profile barrier on
// isolated metrics/trace scratch, and a deterministic sequencer folds
// finished sites back into site-list order before anything touches shared
// state — the dataset, the metrics registry, the tracer, the streaming
// sink. Every visit is a pure function of (seed, profile, page), so the
// output bytes are identical for every worker count; only the wall clock
// changes.
package crawler

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"webmeasure/internal/browser"
	"webmeasure/internal/cookies"
	"webmeasure/internal/dataset"
	"webmeasure/internal/faults"
	"webmeasure/internal/measurement"
	"webmeasure/internal/metrics"
	"webmeasure/internal/trace"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

// networkFailureProb is the per-(page, profile) probability of a failure
// outside the browser (DNS, routing, saturated uplink). Together with the
// browser's own failure probability the per-profile failure rate is ~11%,
// the paper's mean.
const networkFailureProb = 0.08

// Config parameterizes a crawl.
type Config struct {
	// Universe generates the sites' pages.
	Universe *webgen.Universe
	// Profiles to run; one client per profile. Defaults to the paper's
	// five (browser.DefaultProfiles).
	Profiles []browser.Profile
	// Sites to visit.
	Sites []tranco.Entry
	// MaxPages bounds the subpages visited per site in addition to the
	// landing page (the paper collects 25). 0 = all generated pages.
	MaxPages int
	// Instances is the number of parallel browser instances per client
	// (the paper runs 15 per VM). 0 = 15.
	Instances int
	// TimeoutMS is the per-page timeout. 0 = browser.DefaultTimeoutMS.
	TimeoutMS int
	// Seed individualizes the crawl's volatile behaviour (visit nonces).
	Seed int64
	// Stateful preserves the browser state (cookie jar) across the pages
	// of a site within each client — the alternative design choice
	// Appendix C discusses. Stateful clients visit pages sequentially
	// (browser state is per session), so Instances is ignored. The
	// default is the paper's stateless mode, where visit order cannot
	// affect results.
	Stateful bool
	// Epoch selects the web's point in time (webgen.GenerateSiteAt):
	// 0 = the base snapshot; higher values accumulate content churn,
	// tracker swaps, and page turnover. Crawling the same seed at two
	// epochs yields the longitudinal-comparability experiment.
	Epoch int
	// Resume, if non-nil, is a previously collected (possibly partial)
	// dataset: visits already present there are reused instead of being
	// re-performed, so an interrupted multi-day crawl continues where it
	// stopped. Only successful visits are reused; failures are retried.
	Resume *dataset.Dataset
	// SiteWorkers bounds the site-level worker pool: how many sites are
	// crawled concurrently. Output bytes are identical for every value —
	// the sequencer emits sites in list order regardless of completion
	// order — so this is purely a wall-clock/memory knob. 0 = GOMAXPROCS.
	SiteWorkers int
	// Progress, if non-nil, receives the site index after each site is
	// emitted, strictly in site-list order (monitoring hook for the
	// commander UI).
	Progress func(done, total int)
	// OnVisit, if non-nil, receives every visit at emission — the
	// streaming hook for multi-day crawls (write-through checkpointing).
	// Called from the single emission goroutine, in final dataset order.
	OnVisit func(*measurement.Visit)
	// Sink, if non-nil, receives each emitted site's visits in site-list
	// order — the streaming dataset writer (dataset.SiteWriter satisfies
	// it). With a sink attached and DiscardDataset set, a crawl's peak
	// memory is bounded by the in-flight reorder window instead of the
	// whole dataset.
	Sink SiteSink
	// DiscardDataset skips accumulating the in-memory dataset.Dataset;
	// Run returns an empty one. Use together with Sink (or OnVisit) when
	// the caller streams visits out instead of analyzing them in place.
	DiscardDataset bool
	// Metrics, if non-nil, receives live crawl counters and timings
	// (crawl.sites, crawl.visits, crawl.visit_ms, …; the full name list
	// is in the internal/metrics package comment). Snapshot it from
	// another goroutine for progress lines while the crawl runs.
	Metrics *metrics.Registry
	// Faults injects deterministic per-attempt failures (errors, 5xx,
	// latency, truncation, redirect loops) into every page fetch. The
	// zero value injects nothing — the seed pipeline's clean network.
	Faults faults.Profile
	// Retry bounds the per-visit attempt loop; zero fields take defaults
	// (see RetryPolicy). Retries only run when Faults is enabled: the
	// baseline failure modes are session-persistent and retrying them
	// would only skew the paper's ~11% failure calibration.
	Retry RetryPolicy
	// Tracer, if non-nil, records one trace per page: a crawl.visit span
	// per profile with crawl.fetch/crawl.backoff children carrying fault
	// kind and attempt attributes, on the crawl's simulated-time axis
	// (StartOffsetS + accumulated render/backoff milliseconds), so traces
	// are byte-identical for any worker count. Falls back to the tracer
	// carried by Run's context.
	Tracer *trace.Tracer
	// PageFilter, if non-nil, restricts the crawl to the pages it accepts
	// (a shard's slice of the page-key space). Every visit is a pure
	// function of (seed, profile, page), so a filtered crawl records
	// exactly the bytes the full crawl would for the kept pages. In
	// stateful mode rejected pages are still visited — the shared cookie
	// jar must advance exactly as in the full crawl — but nothing about
	// them is recorded. Page-granular stats and metrics (pages, visits,
	// attempts, retries, injected faults) sum to the unsharded run's
	// values across a disjoint filter family; site-granular ones
	// (crawl.sites, crawl.site_ms) count a site once per shard touching it.
	PageFilter func(site, pageURL string) bool
}

// RetryPolicy bounds visitPage's attempt loop. Backoff is exponential
// with deterministic jitter and accrues against a per-visit simulated
// time budget — no wall clock is consulted, so the schedule is identical
// for every worker count.
type RetryPolicy struct {
	// MaxAttempts caps fetch attempts per visit (default 3).
	MaxAttempts int
	// BaseBackoffMS is the first backoff step (default 500).
	BaseBackoffMS int
	// MaxBackoffMS caps a single backoff step (default 8000).
	MaxBackoffMS int
	// BudgetMS caps the visit's total simulated spend — render time plus
	// backoff; when the next backoff would blow the budget, the loop
	// stops and the visit keeps its last failure (default 60000).
	BudgetMS int
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 3
	}
	if r.BaseBackoffMS <= 0 {
		r.BaseBackoffMS = 500
	}
	if r.MaxBackoffMS <= 0 {
		r.MaxBackoffMS = 8_000
	}
	if r.BudgetMS <= 0 {
		r.BudgetMS = 60_000
	}
	return r
}

// backoffMS computes the simulated wait before retrying after the given
// attempt (0-based): exponential growth, capped, plus up to 50%
// deterministic jitter derived from the visit's entropy.
func (r RetryPolicy) backoffMS(attempt int, pageSeed, nonce uint64) int {
	step := r.BaseBackoffMS << uint(attempt)
	if step > r.MaxBackoffMS || step <= 0 {
		step = r.MaxBackoffMS
	}
	jitter := webgen.RollProb(pageSeed, nonce, "crawler", fmt.Sprintf("backoff%d", attempt))
	return step + int(jitter*float64(step)/2)
}

// Stats summarizes a crawl.
type Stats struct {
	SitesVisited    int
	PagesDiscovered int
	VisitsTotal     int
	VisitsFailed    int
	// VisitsDegraded counts successful visits whose observation an
	// injected fault truncated (partial loads).
	VisitsDegraded int
	// VisitsRetried counts visits that needed more than one attempt.
	VisitsRetried int
	// AttemptsTotal counts fetch attempts across all performed visits.
	AttemptsTotal int
	// VisitsReused counts visits taken from Config.Resume.
	VisitsReused int
}

// SiteSink receives each emitted site's visits, in site-list order, from
// the single emission goroutine. dataset.SiteWriter implementations
// satisfy it (Close stays with the caller, which owns the output).
type SiteSink interface {
	WriteSite(site string, visits []*measurement.Visit) error
}

// add folds another site's stats into the run totals.
func (s *Stats) add(o Stats) {
	s.SitesVisited += o.SitesVisited
	s.PagesDiscovered += o.PagesDiscovered
	s.VisitsTotal += o.VisitsTotal
	s.VisitsFailed += o.VisitsFailed
	s.VisitsDegraded += o.VisitsDegraded
	s.VisitsRetried += o.VisitsRetried
	s.AttemptsTotal += o.AttemptsTotal
	s.VisitsReused += o.VisitsReused
}

// crawlRun is the resolved, immutable state a crawl's site workers share.
type crawlRun struct {
	cfg       Config
	profiles  []browser.Profile
	instances int
	retry     RetryPolicy
	// tracer is the run's merged tracer; each site works on a Scratch of
	// it and the sequencer Imports the exports in site order.
	tracer *trace.Tracer
}

// Run executes the crawl and returns the collected dataset. Sites are
// crawled by Config.SiteWorkers concurrent workers on isolated scratch
// state and emitted in site-list order; the context cancels dispatch
// between sites (in-flight sites finish, the contiguous emitted prefix is
// kept, and ctx.Err() is returned).
func Run(ctx context.Context, cfg Config) (*dataset.Dataset, Stats, error) {
	if cfg.Universe == nil {
		return nil, Stats{}, fmt.Errorf("crawler: Config.Universe is required")
	}
	if len(cfg.Sites) == 0 {
		return nil, Stats{}, fmt.Errorf("crawler: no sites to crawl")
	}
	// Validate the fault profile once up front; per-site injectors are
	// derived from the same (seed, profile) pair and cannot fail after
	// this. The validation injector also pre-binds the fault counters so
	// the exposition lists them even before the first site merges.
	inj, err := faults.New(cfg.Seed, cfg.Faults)
	if err != nil {
		return nil, Stats{}, err
	}
	inj.InstrumentWith(cfg.Metrics)

	c := &crawlRun{
		cfg:       cfg,
		profiles:  cfg.Profiles,
		instances: cfg.Instances,
		retry:     cfg.Retry.withDefaults(),
		tracer:    cfg.Tracer,
	}
	if len(c.profiles) == 0 {
		c.profiles = browser.DefaultProfiles()
	}
	if c.instances <= 0 {
		c.instances = 15
	}
	if c.tracer == nil {
		c.tracer = trace.TracerFrom(ctx)
	}
	// Pre-create the run-level instruments so the exposition's instrument
	// set does not depend on how many sites merged before a snapshot.
	registerCrawlMetrics(cfg.Metrics, c.profiles)

	workers := cfg.SiteWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfg.Sites) {
		workers = len(cfg.Sites)
	}
	// The reorder window bounds how far completed sites may run ahead of
	// the emission cursor: a permit is taken before a site is dispatched
	// and released when the site is emitted (or the run aborts). A slow
	// head site therefore stalls dispatch after window sites instead of
	// letting finished sites pile up without bound — the backpressure that
	// keeps streaming crawls at O(window) memory.
	window := 2 * workers
	permits := make(chan struct{}, window)
	jobs := make(chan int)
	results := make(chan *siteResult, window)

	dispatchCtx, stopDispatch := context.WithCancel(ctx)
	defer stopDispatch()
	go func() {
		defer close(jobs)
		for si := range cfg.Sites {
			select {
			case permits <- struct{}{}:
			case <-dispatchCtx.Done():
				return
			}
			select {
			case jobs <- si:
			case <-dispatchCtx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range jobs {
				results <- c.crawlSite(si)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	ds := dataset.New()
	var stats Stats
	var runErr error
	seq := newSequencer(func(r *siteResult) error {
		defer func() { <-permits }()
		if runErr != nil {
			// Drain mode after a failure: release window slots, emit nothing.
			return nil
		}
		if r.err != nil {
			return r.err
		}
		return c.emit(r, ds, &stats)
	})
	for r := range results {
		if err := seq.offer(r); err != nil {
			runErr = err
			stopDispatch()
		}
	}
	if runErr != nil {
		return ds, stats, runErr
	}
	if err := ctx.Err(); err != nil {
		return ds, stats, err
	}
	return ds, stats, nil
}

// registerCrawlMetrics pre-creates every run-level crawl instrument on
// the shared registry (a nil registry is a no-op), so snapshots taken
// before the first site emission already list them — the same surface the
// sequential crawler exposed.
func registerCrawlMetrics(reg *metrics.Registry, profiles []browser.Profile) {
	if reg == nil {
		return
	}
	for _, name := range []string{
		"crawl.sites", "crawl.pages", "crawl.visits", "crawl.visits.failed",
		"crawl.visits.degraded", "crawl.visits.retried", "crawl.attempts",
		"crawl.visits.reused",
	} {
		reg.Counter(name)
	}
	reg.Histogram("crawl.visit_ms")
	reg.Histogram("crawl.site_ms")
	for _, p := range profiles {
		reg.Histogram(metrics.Labeled("crawl.visit_ms", "profile", p.Name))
	}
}

// emit folds one finished site into the run's shared state, in site-list
// order: stats, the metrics merge, the trace import, the dataset/OnVisit
// append, the streaming sink, and finally the progress callback. Runs on
// the single sequencer goroutine.
func (c *crawlRun) emit(r *siteResult, ds *dataset.Dataset, stats *Stats) error {
	if !r.skipped {
		stats.add(r.stats)
		if c.cfg.Metrics != nil {
			if err := c.cfg.Metrics.Merge(r.dump); err != nil {
				return fmt.Errorf("crawler: merge site metrics: %w", err)
			}
		}
		if c.tracer != nil {
			if err := c.tracer.Import(r.traces); err != nil {
				return fmt.Errorf("crawler: merge site traces: %w", err)
			}
		}
		for _, v := range r.visits {
			if !c.cfg.DiscardDataset {
				ds.Add(v)
			}
			if c.cfg.OnVisit != nil {
				c.cfg.OnVisit(v)
			}
		}
		if c.cfg.Sink != nil {
			if err := c.cfg.Sink.WriteSite(r.site, r.visits); err != nil {
				return fmt.Errorf("crawler: site sink: %w", err)
			}
		}
	}
	if c.cfg.Progress != nil {
		c.cfg.Progress(r.index+1, len(c.cfg.Sites))
	}
	return nil
}

// crawlSite runs one site's whole profile barrier on isolated scratch
// state: a fresh metrics registry, a scratch tracer, and a per-site fault
// injector (fault decisions are pure functions of (seed, profile, page,
// attempt), so per-site injectors decide exactly what a shared one
// would). Visits land in canonical slots — kept pages in discovery order,
// profiles in configuration order within each page — so the emitted visit
// order is a pure function of the site, not of goroutine scheduling.
func (c *crawlRun) crawlSite(si int) *siteResult {
	cfg := &c.cfg
	r := &siteResult{index: si}

	var reg *metrics.Registry
	if cfg.Metrics != nil {
		reg = metrics.New()
	}
	tracer := c.tracer.Scratch()
	inj, err := faults.New(cfg.Seed, cfg.Faults)
	if err != nil {
		r.err = err
		return r
	}
	inj.InstrumentWith(reg)
	var transport browser.Transport
	if inj.Enabled() {
		transport = inj
	}

	siteDone := reg.Histogram("crawl.site_ms").Time()
	site := cfg.Universe.GenerateSiteAt(cfg.Sites[si], cfg.Epoch)
	r.site = site.Domain
	pages := discoverPages(site, cfg.MaxPages)
	kept := pages
	if cfg.PageFilter != nil {
		kept = make([]*webgen.Page, 0, len(pages))
		for _, p := range pages {
			if cfg.PageFilter(site.Domain, p.URL) {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			// No page of this site belongs to the shard: skip the site
			// without counting it — not even a crawl.site_ms sample, which
			// would register a near-zero timing for work never done and
			// skew the site-latency histogram under sharding.
			r.skipped = true
			return r
		}
	}
	r.stats.SitesVisited = 1
	r.stats.PagesDiscovered = len(kept)
	reg.Counter("crawl.pages").Add(int64(len(kept)))

	mVisits := reg.Counter("crawl.visits")
	mFailed := reg.Counter("crawl.visits.failed")
	mDegraded := reg.Counter("crawl.visits.degraded")
	mRetried := reg.Counter("crawl.visits.retried")
	mAttempts := reg.Counter("crawl.attempts")
	mReused := reg.Counter("crawl.visits.reused")
	mVisitMS := reg.Histogram("crawl.visit_ms")
	// Per-profile latency series: one labeled histogram per profile, the
	// per-profile half of the stage breakdown.
	mVisitMSByProf := make(map[string]*metrics.Histogram, len(c.profiles))
	for _, p := range c.profiles {
		mVisitMSByProf[p.Name] = reg.Histogram(metrics.Labeled("crawl.visit_ms", "profile", p.Name))
	}

	// Canonical visit slots: page-major, profile-minor. Each slot is
	// written exactly once, by the goroutine that performed the visit.
	nProf := len(c.profiles)
	pageIdx := make(map[string]int, len(kept))
	for i, p := range kept {
		pageIdx[p.URL] = i
	}
	slots := make([]*measurement.Visit, len(kept)*nProf)

	// Checkpoint reuse: split each profile's work into pages already
	// covered by the resume dataset and pages still to visit.
	reuse := func(prof browser.Profile, page *webgen.Page) *measurement.Visit {
		if cfg.Resume == nil {
			return nil
		}
		pv := cfg.Resume.PageGroup(dataset.PageKey{Site: site.Domain, PageURL: page.URL})
		if pv == nil {
			return nil
		}
		if v := pv.ByProfile[prof.Name]; v != nil && v.Clean() {
			return v
		}
		return nil
	}

	var statsMu sync.Mutex
	// The commander starts every profile's client on the site at the
	// same moment and waits for all of them (site-level barrier).
	var wg sync.WaitGroup
	for pi, prof := range c.profiles {
		wg.Add(1)
		go func(pi int, prof browser.Profile) {
			defer wg.Done()
			b := &browser.Browser{Profile: prof, TimeoutMS: cfg.TimeoutMS, Transport: transport}
			reused := func(v *measurement.Visit) {
				slots[pageIdx[v.PageURL]*nProf+pi] = v
				mVisits.Inc()
				mReused.Inc()
				statsMu.Lock()
				r.stats.VisitsTotal++
				r.stats.VisitsReused++
				statsMu.Unlock()
			}
			performed := func(v *measurement.Visit) {
				slots[pageIdx[v.PageURL]*nProf+pi] = v
				mVisits.Inc()
				attempts := v.Attempts
				if attempts <= 0 {
					attempts = 1
				}
				mAttempts.Add(int64(attempts))
				if attempts > 1 {
					mRetried.Inc()
				}
				degraded := v.EffectiveStatus() == measurement.VisitDegraded
				if degraded {
					mDegraded.Inc()
				}
				if !v.Success {
					mFailed.Inc()
				} else {
					mVisitMS.Observe(float64(v.DurationMS))
					mVisitMSByProf[v.Profile].Observe(float64(v.DurationMS))
				}
				statsMu.Lock()
				r.stats.VisitsTotal++
				r.stats.AttemptsTotal += attempts
				if attempts > 1 {
					r.stats.VisitsRetried++
				}
				if degraded {
					r.stats.VisitsDegraded++
				}
				if !v.Success {
					r.stats.VisitsFailed++
				}
				statsMu.Unlock()
			}
			if cfg.Stateful {
				// One sequential session per site: the jar persists across
				// pages in discovery order. Off-shard pages are visited so
				// the jar advances exactly as in the unsharded crawl, but
				// recorded nowhere (nil tracer and registry are no-ops).
				jar := browser.NewJar()
				for _, p := range pages {
					if cfg.PageFilter != nil && !cfg.PageFilter(site.Domain, p.URL) {
						visitPage(nil, nil, b, site, p, cfg.Seed, jar, c.retry)
						continue
					}
					if v := reuse(prof, p); v != nil {
						reused(v)
						continue
					}
					performed(visitPage(tracer, reg, b, site, p, cfg.Seed, jar, c.retry))
				}
				return
			}
			var todo []*webgen.Page
			for _, p := range kept {
				if v := reuse(prof, p); v != nil {
					reused(v)
					continue
				}
				todo = append(todo, p)
			}
			visitAll(tracer, reg, b, site, todo, cfg.Seed, c.instances, c.retry, performed)
		}(pi, prof)
	}
	wg.Wait()
	reg.Counter("crawl.sites").Inc()
	siteDone()
	r.visits = slots
	if reg != nil {
		r.dump = reg.Dump()
	}
	if tracer != nil {
		r.traces = tracer.Export()
	}
	return r
}

// discoverPages delegates to the HTML-parsing discovery pass.
func discoverPages(site *webgen.Site, maxPages int) []*webgen.Page {
	return DiscoverPages(site, maxPages)
}

// visitAll runs one stateless client: a pool of browser instances
// draining the site's pages, delivering every visit to the sink. (The
// stateful sequential session lives in Run, where shard-filtered crawls
// interleave recorded and discarded visits over one shared jar.)
func visitAll(tracer *trace.Tracer, reg *metrics.Registry, b *browser.Browser,
	site *webgen.Site, pages []*webgen.Page,
	seed int64, instances int, retry RetryPolicy,
	sink func(*measurement.Visit)) {

	type job struct{ page *webgen.Page }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for i := 0; i < instances; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				sink(visitPage(tracer, reg, b, site, j.page, seed, nil, retry))
			}
		}()
	}
	for _, p := range pages {
		jobs <- job{page: p}
	}
	close(jobs)
	wg.Wait()
}

// visitPage performs one page visit with failure injection, bounded
// retries, and start-offset bookkeeping. Baseline failures (unreachable
// site, session-level network error, browser crash) are persistent —
// retrying the same session cannot clear them — while injected transient
// faults are retried with exponential backoff, deterministic jitter, and
// a per-visit simulated-time budget. No wall clock is consulted, so the
// retry schedule is a pure function of (seed, profile, page).
//
// When tracing is on, the visit records a crawl.visit span on the page's
// trace with one crawl.fetch child per attempt and one crawl.backoff
// child per retry wait, all on the simulated-time axis: the visit starts
// at StartOffsetS and each attempt/backoff advances the cursor by its
// simulated milliseconds.
func visitPage(tracer *trace.Tracer, reg *metrics.Registry,
	b *browser.Browser, site *webgen.Site, page *webgen.Page,
	seed int64, jar *cookies.Jar, retry RetryPolicy) *measurement.Visit {

	nonce := visitNonce(seed, b.Profile.Name, page.URL)
	tr := tracer.Trace("page", site.Domain+"|"+page.URL)
	failedVisit := func(failure string) *measurement.Visit {
		v := &measurement.Visit{
			Site: site.Domain, PageURL: page.URL, Profile: b.Profile.Name,
			Failure: failure, Status: measurement.VisitFailed,
		}
		s := tr.Span(nil, "crawl.visit", b.Profile.Name, 0)
		s.SetAttr("profile", b.Profile.Name).SetAttr("status", measurement.VisitFailed).SetAttr("failure", failure)
		s.End(0)
		return v
	}
	if site.Unreachable {
		return failedVisit("site unreachable")
	}
	if webgen.RollProb(page.Seed, nonce, "crawler", "netfail") < networkFailureProb {
		return failedVisit("network error")
	}
	// Visits start near-simultaneously but drift page by page; the paper
	// reports a 46s mean deviation with heavy tail (Appendix C). Model the
	// offset as a mixture of small jitter and occasional timeout-induced
	// stragglers. Rolled before the attempt loop so the visit span can
	// start at the offset; the roll is a pure function of (page, nonce),
	// so its position does not change the value.
	var offsetS float64
	r := webgen.RollProb(page.Seed, nonce, "crawler", "offset")
	switch {
	case r < 0.85:
		offsetS = r * 40 // 0..34s
	default:
		offsetS = 30 + (r-0.85)*2400 // tail up to ~6 min
	}
	cursorUS := int64(offsetS * 1e6)
	vs := tr.Span(nil, "crawl.visit", b.Profile.Name, cursorUS)
	vs.SetAttr("profile", b.Profile.Name)

	var v *measurement.Visit
	spentMS := 0
	for attempt := 0; ; attempt++ {
		attemptJar := jar
		if attemptJar == nil {
			// Stateless mode: every attempt is a fresh session.
			attemptJar = browser.NewJar()
		}
		v = b.VisitAttempt(page, nonce, attempt, attemptJar)
		fs := vs.Trace().Span(vs, "crawl.fetch", fmt.Sprintf("%s#%d", b.Profile.Name, attempt), cursorUS)
		fs.SetAttr("profile", b.Profile.Name).SetAttrInt("attempt", attempt+1)
		fs.SetAttr("status", v.EffectiveStatus())
		if v.FaultKind != "" {
			fs.SetAttr("fault.kind", v.FaultKind)
		}
		if v.Failure != "" {
			fs.SetAttr("failure", v.Failure)
		}
		cursorUS += int64(v.DurationMS) * 1000
		fs.End(cursorUS)
		spentMS += v.DurationMS
		if v.Success || !v.Retryable || attempt+1 >= retry.MaxAttempts {
			break
		}
		wait := retry.backoffMS(attempt, page.Seed, nonce)
		if spentMS+wait > retry.BudgetMS {
			vs.AddEvent("retry.budget_exhausted", cursorUS,
				trace.Attr{Key: "spent_ms", Value: fmt.Sprintf("%d", spentMS)},
				trace.Attr{Key: "next_wait_ms", Value: fmt.Sprintf("%d", wait)})
			break
		}
		// The retry is now committed: count it by the fault kind that
		// triggered it (injected faults are the only retryable failures).
		kind := v.FaultKind
		if kind == "" {
			kind = "unknown"
		}
		reg.Counter(metrics.Labeled("crawl.retries.total", "kind", kind)).Inc()
		bs := vs.Trace().Span(vs, "crawl.backoff", fmt.Sprintf("%s#%d", b.Profile.Name, attempt), cursorUS)
		bs.SetAttr("profile", b.Profile.Name).SetAttrInt("attempt", attempt+1).
			SetAttrInt("wait_ms", wait).SetAttr("fault.kind", kind)
		cursorUS += int64(wait) * 1000
		bs.End(cursorUS)
		spentMS += wait
	}
	v.StartOffsetS = offsetS
	vs.SetAttr("status", v.EffectiveStatus()).SetAttrInt("attempts", v.Attempts)
	if v.Failure != "" {
		vs.SetAttr("failure", v.Failure)
	}
	vs.End(cursorUS)
	return v
}

// visitNonce derives the per-visit entropy. Distinct profiles get distinct
// nonces even with identical configurations — they are distinct sessions
// hitting distinct server-side state, which is why Sim1 and Sim2 differ.
func visitNonce(seed int64, profile, pageURL string) uint64 {
	return webgen.NonceFor(uint64(seed), profile, pageURL)
}
