package crawler

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSequencerEmitsInIndexOrder feeds the sequencer every permutation
// driver a seeded generator produces and asserts the emission is always
// 0..n-1 in order, each site exactly once — completion order must be
// invisible downstream (satellite of the site-parallel crawl: the
// dataset's byte identity across worker counts rests on this).
func TestSequencerEmitsInIndexOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		perm := rng.Perm(n)
		var got []int
		seq := newSequencer(func(r *siteResult) error {
			got = append(got, r.index)
			return nil
		})
		for _, idx := range perm {
			if err := seq.offer(&siteResult{index: idx}); err != nil {
				t.Fatalf("trial %d: offer(%d): %v", trial, idx, err)
			}
		}
		if len(got) != n {
			t.Fatalf("trial %d: emitted %d of %d sites (completion order %v)", trial, len(got), n, perm)
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("trial %d: emission %v out of order at %d (completion order %v)", trial, got, i, perm)
			}
		}
	}
}

// TestSequencerIdenticalEmissionForAnyCompletionOrder replays the same
// site results in many random completion orders and asserts the emitted
// payload sequence — not just the indices — is identical every time.
func TestSequencerIdenticalEmissionForAnyCompletionOrder(t *testing.T) {
	const n = 25
	results := make([]*siteResult, n)
	for i := range results {
		results[i] = &siteResult{index: i, site: fmt.Sprintf("site-%02d.example", i)}
	}
	emit := func(perm []int) []string {
		var got []string
		seq := newSequencer(func(r *siteResult) error {
			got = append(got, r.site)
			return nil
		})
		for _, idx := range perm {
			if err := seq.offer(results[idx]); err != nil {
				t.Fatalf("offer(%d): %v", idx, err)
			}
		}
		return got
	}
	want := emit(rand.New(rand.NewSource(1)).Perm(n))
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		got := emit(rng.Perm(n))
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d emissions, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: emission %d is %q, want %q", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSequencerStopsOnEmitError pins the failure contract: the first
// emit error is returned to the offering caller, the cursor does not
// advance past the failed site, and buffered later sites stay pending.
func TestSequencerStopsOnEmitError(t *testing.T) {
	boom := fmt.Errorf("sink full")
	var emitted []int
	seq := newSequencer(func(r *siteResult) error {
		if r.index == 1 {
			return boom
		}
		emitted = append(emitted, r.index)
		return nil
	})
	if err := seq.offer(&siteResult{index: 2}); err != nil {
		t.Fatalf("offer(2): %v", err)
	}
	if err := seq.offer(&siteResult{index: 0}); err != nil {
		t.Fatalf("offer(0): %v", err)
	}
	if err := seq.offer(&siteResult{index: 1}); err != boom {
		t.Fatalf("offer(1) returned %v, want the emit error", err)
	}
	if len(emitted) != 1 || emitted[0] != 0 {
		t.Fatalf("emitted %v, want [0]", emitted)
	}
}
