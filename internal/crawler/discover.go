package crawler

import (
	"webmeasure/internal/linkextract"
	"webmeasure/internal/urlutil"
	"webmeasure/internal/webgen"
)

// DiscoverPages implements the paper's subpage collection (§3.1.2): the
// landing page is fetched ahead of the experiment and its HTML parsed for
// first-party links; when it holds too few, discovery recurses into the
// found subpages until maxPages links are known or the site is exhausted.
// The returned slice starts with the landing page, in discovery order.
func DiscoverPages(site *webgen.Site, maxPages int) []*webgen.Page {
	byURL := make(map[string]*webgen.Page, len(site.Pages))
	for _, p := range site.Pages {
		byURL[p.URL] = p
	}

	out := []*webgen.Page{site.Landing}
	if maxPages == 0 {
		maxPages = len(site.Pages)
	}
	seen := map[string]bool{site.Landing.URL: true}
	queue := []*webgen.Page{site.Landing}
	for len(queue) > 0 && len(out)-1 < maxPages {
		cur := queue[0]
		queue = queue[1:]
		links := linkextract.Extract(webgen.RenderHTML(cur), cur.URL)
		for _, href := range links.Anchors {
			if len(out)-1 >= maxPages {
				break
			}
			if seen[href] {
				continue
			}
			seen[href] = true
			// Only first-party links count as subpages.
			if urlutil.IsThirdParty(href, site.Landing.URL) {
				continue
			}
			p := byURL[href]
			if p == nil {
				continue // dangling link (404 in the wild)
			}
			out = append(out, p)
			queue = append(queue, p)
		}
	}
	return out
}
