package crawler

import (
	"context"
	"testing"

	"webmeasure/internal/faults"
	"webmeasure/internal/measurement"
	"webmeasure/internal/metrics"
)

func faultyCrawl(t *testing.T, nSites int, seed int64, p faults.Profile) Config {
	t.Helper()
	cfg := smallCrawl(t, nSites, seed)
	cfg.Faults = p
	return cfg
}

// TestFaultsIncreaseFailures: the heavy profile must fail and degrade
// strictly more visits than the clean baseline.
func TestFaultsIncreaseFailures(t *testing.T) {
	_, base, err := Run(context.Background(), smallCrawl(t, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, heavy, err := Run(context.Background(), faultyCrawl(t, 10, 5, faults.Heavy()))
	if err != nil {
		t.Fatal(err)
	}
	if heavy.VisitsFailed <= base.VisitsFailed {
		t.Errorf("heavy faults failed %d visits, baseline %d", heavy.VisitsFailed, base.VisitsFailed)
	}
	if heavy.VisitsDegraded == 0 {
		t.Error("heavy faults produced no degraded visits")
	}
	if heavy.VisitsRetried == 0 {
		t.Error("heavy faults triggered no retries")
	}
	if heavy.AttemptsTotal <= heavy.VisitsTotal {
		t.Errorf("attempts %d should exceed visits %d under heavy faults",
			heavy.AttemptsTotal, heavy.VisitsTotal)
	}
	if base.VisitsDegraded != 0 || base.VisitsRetried != 0 {
		t.Errorf("clean crawl reported degraded=%d retried=%d",
			base.VisitsDegraded, base.VisitsRetried)
	}
	if base.AttemptsTotal != base.VisitsTotal {
		t.Errorf("clean crawl attempts %d != visits %d", base.AttemptsTotal, base.VisitsTotal)
	}
}

// TestRetriesRecoverFlakyPages: with a flaky-only fault profile every
// failure is recoverable within the default 3 attempts, so the failure
// rate must equal the clean baseline while retried visits appear.
func TestRetriesRecoverFlakyPages(t *testing.T) {
	flaky := faults.Profile{Name: "flaky-only", FlakyProb: 0.5, FlakyFailures: 2}
	_, base, err := Run(context.Background(), smallCrawl(t, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := Run(context.Background(), faultyCrawl(t, 8, 11, flaky))
	if err != nil {
		t.Fatal(err)
	}
	if got.VisitsFailed != base.VisitsFailed {
		t.Errorf("flaky-only failures = %d, want baseline %d (all flakes recover)",
			got.VisitsFailed, base.VisitsFailed)
	}
	if got.VisitsRetried == 0 {
		t.Error("flaky pages were never retried")
	}
}

// TestRetryBudgetStopsAttempts: with a one-attempt policy the flaky pages
// cannot recover and must surface as retryable failures.
func TestRetryBudgetStopsAttempts(t *testing.T) {
	flaky := faults.Profile{Name: "flaky-only", FlakyProb: 0.5, FlakyFailures: 2}
	cfg := faultyCrawl(t, 8, 11, flaky)
	cfg.Retry = RetryPolicy{MaxAttempts: 1}
	ds, got, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.VisitsRetried != 0 {
		t.Errorf("MaxAttempts=1 still retried %d visits", got.VisitsRetried)
	}
	retryable := 0
	for _, v := range ds.Visits() {
		if !v.Success && v.Retryable {
			retryable++
		}
	}
	if retryable == 0 {
		t.Error("no failure was marked retryable despite flaky faults and no retries")
	}
}

// TestFaultCrawlDeterministic: two crawls with the same seed and fault
// profile must produce identical visit records — attempt counts, status,
// and failure strings included — despite the parallel instance pool.
func TestFaultCrawlDeterministic(t *testing.T) {
	key := func(v *measurement.Visit) string { return v.Profile + "|" + v.PageURL }
	collect := func(instances int) map[string]*measurement.Visit {
		cfg := faultyCrawl(t, 6, 3, faults.Heavy())
		cfg.Instances = instances
		ds, _, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]*measurement.Visit{}
		for _, v := range ds.Visits() {
			out[key(v)] = v
		}
		return out
	}
	a, b := collect(1), collect(8)
	if len(a) != len(b) {
		t.Fatalf("visit counts differ: %d vs %d", len(a), len(b))
	}
	for k, va := range a {
		vb := b[k]
		if vb == nil {
			t.Fatalf("visit %s missing at instances=8", k)
		}
		if va.Success != vb.Success || va.Status != vb.Status ||
			va.Attempts != vb.Attempts || va.Failure != vb.Failure ||
			len(va.Requests) != len(vb.Requests) {
			t.Fatalf("visit %s diverged:\n 1: %+v\n 8: %+v", k, va, vb)
		}
	}
}

// TestFaultMetricsFlow: the new retry/failure counters reach the
// registry.
func TestFaultMetricsFlow(t *testing.T) {
	reg := metrics.New()
	cfg := faultyCrawl(t, 8, 7, faults.Heavy())
	cfg.Metrics = reg
	_, stats, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"crawl.attempts":        int64(stats.AttemptsTotal),
		"crawl.visits.retried":  int64(stats.VisitsRetried),
		"crawl.visits.degraded": int64(stats.VisitsDegraded),
		"crawl.visits.failed":   int64(stats.VisitsFailed),
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if reg.Counter("crawl.visits.retried").Value() == 0 {
		t.Error("no retries counted under heavy faults")
	}
}

// TestInvalidFaultProfileRejected: a profile whose probability mass
// exceeds 1 aborts the crawl up front.
func TestInvalidFaultProfileRejected(t *testing.T) {
	cfg := faultyCrawl(t, 2, 1, faults.Profile{ErrorProb: 0.9, TruncateProb: 0.9})
	if _, _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("invalid fault profile accepted")
	}
}

// TestRedirectLoopRecordsChain: redirect-loop failures keep their 302 hop
// chain in the visit record for diagnosability.
func TestRedirectLoopRecordsChain(t *testing.T) {
	loop := faults.Profile{Name: "loop-only", RedirectLoopProb: 0.5}
	ds, _, err := Run(context.Background(), faultyCrawl(t, 6, 13, loop))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range ds.Visits() {
		if v.Success || len(v.Requests) == 0 {
			continue
		}
		found = true
		for i, r := range v.Requests {
			if r.Status != 302 {
				t.Fatalf("loop hop %d has status %d", i, r.Status)
			}
		}
	}
	if !found {
		t.Error("no redirect-loop failure recorded its hop chain")
	}
}

// TestResumeSkipsOnlyCleanVisits: checkpoint reuse must not resurrect
// degraded visits — they are re-performed like failures.
func TestResumeSkipsOnlyCleanVisits(t *testing.T) {
	cfg := faultyCrawl(t, 6, 9, faults.Heavy())
	first, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	degraded := 0
	for _, v := range first.Visits() {
		if v.EffectiveStatus() == measurement.VisitDegraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Skip("seed produced no degraded visits; adjust the seed")
	}
	cfg.Resume = first
	second, stats2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Len() != first.Len() {
		t.Fatalf("resume changed dataset size: %d vs %d", second.Len(), first.Len())
	}
	// Clean visits are reused; failed and degraded ones are re-performed.
	wantReused := 0
	for _, v := range first.Visits() {
		if v.Clean() {
			wantReused++
		}
	}
	if stats2.VisitsReused != wantReused {
		t.Errorf("reused %d visits, want %d (clean only)", stats2.VisitsReused, wantReused)
	}
}
