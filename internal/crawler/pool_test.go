package crawler

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"webmeasure/internal/dataset"
	"webmeasure/internal/faults"
	"webmeasure/internal/measurement"
	"webmeasure/internal/metrics"
)

// runWorkers crawls cfg with the given site-worker count and returns the
// dataset's JSONL bytes, the metrics counter map, and the stats.
func runWorkers(t *testing.T, cfg Config, workers int) ([]byte, map[string]int64, Stats) {
	t.Helper()
	cfg.SiteWorkers = workers
	cfg.Metrics = metrics.New()
	ds, stats, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSONL(&buf); err != nil {
		t.Fatalf("workers=%d: write: %v", workers, err)
	}
	return buf.Bytes(), cfg.Metrics.Dump().Counters, stats
}

// TestSiteWorkersByteIdentical is the package-level half of the parallel
// determinism contract: 1 worker and 8 workers must produce the same
// dataset bytes, the same counter values, and the same stats — clean and
// under heavy fault injection.
func TestSiteWorkersByteIdentical(t *testing.T) {
	heavy, err := faults.ByName("heavy")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		mutil func(*Config)
	}{
		{"clean", func(*Config) {}},
		{"heavy-faults", func(c *Config) { c.Faults = heavy }},
		{"stateful", func(c *Config) { c.Stateful = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCrawl(t, 10, 11)
			tc.mutil(&cfg)
			ds1, ctr1, st1 := runWorkers(t, cfg, 1)
			ds8, ctr8, st8 := runWorkers(t, cfg, 8)
			if !bytes.Equal(ds1, ds8) {
				t.Errorf("dataset bytes differ between 1 and 8 site workers")
			}
			if !reflect.DeepEqual(ctr1, ctr8) {
				t.Errorf("counters differ:\n 1 worker: %v\n 8 workers: %v", ctr1, ctr8)
			}
			if st1 != st8 {
				t.Errorf("stats differ:\n 1 worker: %+v\n 8 workers: %+v", st1, st8)
			}
		})
	}
}

// orderSink records the site order and visit stream a crawl emits.
type orderSink struct {
	sites  []string
	visits []*measurement.Visit
}

func (s *orderSink) WriteSite(site string, visits []*measurement.Visit) error {
	s.sites = append(s.sites, site)
	s.visits = append(s.visits, visits...)
	return nil
}

// TestSinkReceivesSiteListOrder pins the streaming contract: the sink
// sees every site exactly once, in site-list order, and the concatenated
// sink visits equal the in-memory dataset's insertion order (DiscardDataset
// off so both exist to compare).
func TestSinkReceivesSiteListOrder(t *testing.T) {
	cfg := smallCrawl(t, 9, 5)
	cfg.SiteWorkers = 4
	sink := &orderSink{}
	cfg.Sink = sink
	var onVisit []*measurement.Visit
	cfg.OnVisit = func(v *measurement.Visit) { onVisit = append(onVisit, v) }
	ds, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(cfg.Sites))
	for i, e := range cfg.Sites {
		want[i] = cfg.Universe.GenerateSiteAt(e, cfg.Epoch).Domain
	}
	if !reflect.DeepEqual(sink.sites, want) {
		t.Errorf("sink site order %v, want site-list order %v", sink.sites, want)
	}
	if len(sink.visits) != ds.Len() {
		t.Fatalf("sink saw %d visits, dataset has %d", len(sink.visits), ds.Len())
	}
	for i, v := range sink.visits {
		if onVisit[i] != v {
			t.Fatalf("OnVisit order diverges from sink order at visit %d", i)
		}
	}
	// The streamed bytes equal the buffered writer's bytes.
	var streamed, buffered bytes.Buffer
	sw := dataset.NewJSONLSiteWriter(&streamed)
	start := 0
	for _, site := range sink.sites {
		end := start
		for end < len(sink.visits) && sink.visits[end].Site == site {
			end++
		}
		if err := sw.WriteSite(site, sink.visits[start:end]); err != nil {
			t.Fatal(err)
		}
		start = end
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteJSONL(&buffered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), buffered.Bytes()) {
		t.Errorf("streamed JSONL differs from buffered WriteJSONL")
	}
}

// TestDiscardDataset checks the streaming-only mode: with DiscardDataset
// the returned dataset stays empty while the sink still receives every
// visit.
func TestDiscardDataset(t *testing.T) {
	cfg := smallCrawl(t, 5, 3)
	sink := &orderSink{}
	cfg.Sink = sink
	cfg.DiscardDataset = true
	ds, stats, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 0 {
		t.Errorf("DiscardDataset kept %d visits in memory", ds.Len())
	}
	if len(sink.visits) != stats.VisitsTotal {
		t.Errorf("sink saw %d visits, stats count %d", len(sink.visits), stats.VisitsTotal)
	}
}

// TestSinkErrorAbortsRun checks a failing sink stops the crawl with its
// error instead of crawling every remaining site to completion.
func TestSinkErrorAbortsRun(t *testing.T) {
	cfg := smallCrawl(t, 8, 3)
	cfg.SiteWorkers = 2
	boom := fmt.Errorf("disk full")
	fail := failSink{after: 2, err: boom}
	cfg.Sink = &fail
	_, _, err := Run(context.Background(), cfg)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("disk full")) {
		t.Fatalf("run returned %v, want the sink error", err)
	}
}

type failSink struct {
	after int
	n     int
	err   error
}

func (s *failSink) WriteSite(string, []*measurement.Visit) error {
	s.n++
	if s.n > s.after {
		return s.err
	}
	return nil
}

// TestMidRunCancellation cancels the context from the progress callback
// and expects ctx.Err back with a contiguous site-list prefix emitted —
// the pool's drain path (also exercised under -race by make race-crawl).
func TestMidRunCancellation(t *testing.T) {
	cfg := smallCrawl(t, 12, 9)
	cfg.SiteWorkers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &orderSink{}
	cfg.Sink = sink
	cfg.Progress = func(done, total int) {
		if done == 3 {
			cancel()
		}
	}
	_, _, err := Run(ctx, cfg)
	if err != context.Canceled {
		t.Fatalf("run returned %v, want context.Canceled", err)
	}
	if len(sink.sites) < 3 {
		t.Fatalf("only %d sites emitted before cancel, progress fired at 3", len(sink.sites))
	}
	want := make([]string, len(sink.sites))
	for i := range sink.sites {
		want[i] = cfg.Universe.GenerateSiteAt(cfg.Sites[i], cfg.Epoch).Domain
	}
	if !reflect.DeepEqual(sink.sites, want) {
		t.Errorf("emitted sites %v are not a site-list prefix %v", sink.sites, want)
	}
}

// TestSkippedSiteRecordsNoSiteTiming is the skip-path fix: a site whose
// pages are all filtered out must contribute nothing to crawl.site_ms —
// previously it recorded a near-zero sample that skewed the site-latency
// histogram under sharding.
func TestSkippedSiteRecordsNoSiteTiming(t *testing.T) {
	cfg := smallCrawl(t, 6, 13)
	cfg.Metrics = metrics.New()
	skip := cfg.Universe.GenerateSiteAt(cfg.Sites[2], cfg.Epoch).Domain
	cfg.PageFilter = func(site, pageURL string) bool { return site != skip }
	_, stats, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SitesVisited != 5 {
		t.Fatalf("visited %d sites, want 5 (one fully skipped)", stats.SitesVisited)
	}
	d := cfg.Metrics.Dump()
	h, ok := d.Histograms["crawl.site_ms"]
	if !ok {
		t.Fatal("crawl.site_ms histogram missing")
	}
	if h.Count != 5 {
		t.Errorf("crawl.site_ms has %d samples, want 5 — skipped sites must not record a timing", h.Count)
	}
	if got := d.Counters["crawl.sites"]; got != 5 {
		t.Errorf("crawl.sites = %d, want 5", got)
	}
}
