package crawler

import (
	"strings"
	"testing"

	"webmeasure/internal/linkextract"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

func discoverySite(t *testing.T, seed int64, want func(*webgen.Site) bool) *webgen.Site {
	t.Helper()
	u := webgen.New(webgen.DefaultConfig(seed))
	for i := 1; i <= 200; i++ {
		e := tranco.Entry{Rank: i, Site: siteName(i*7) + "-disc.example"}
		s := u.GenerateSite(e)
		if !s.Unreachable && want(s) {
			return s
		}
	}
	t.Skip("no suitable site in scan range")
	return nil
}

func TestDiscoverPagesBasics(t *testing.T) {
	site := discoverySite(t, 21, func(s *webgen.Site) bool { return len(s.Pages) >= 8 })
	got := DiscoverPages(site, 5)
	if got[0] != site.Landing {
		t.Fatal("landing page must come first")
	}
	if len(got) > 6 {
		t.Fatalf("discovered %d pages, want ≤ 6", len(got))
	}
	if len(got) < 2 {
		t.Fatal("no subpages discovered")
	}
	seen := map[string]bool{}
	for _, p := range got {
		if seen[p.URL] {
			t.Fatalf("duplicate page %s", p.URL)
		}
		seen[p.URL] = true
		if p != site.Landing && !strings.HasPrefix(p.URL, "https://"+site.Domain+"/") {
			t.Fatalf("foreign page discovered: %s", p.URL)
		}
	}
}

// TestDiscoverRecursesBeyondLanding finds a site whose landing page links
// only part of its subpages and verifies discovery recurses through
// subpage HTML to reach the rest.
func TestDiscoverRecursesBeyondLanding(t *testing.T) {
	site := discoverySite(t, 33, func(s *webgen.Site) bool {
		return len(s.Pages) >= 10 && len(s.Landing.Links) < len(s.Pages)
	})
	direct := len(site.Landing.Links)
	got := DiscoverPages(site, len(site.Pages))
	if len(got)-1 <= direct {
		// Recursion only helps if sibling cross-links reach hidden pages;
		// verify at least that discovery did not exceed the site.
		t.Logf("discovered %d (landing links %d) — cross-links may not reach hidden pages on this site", len(got)-1, direct)
	}
	if len(got)-1 > len(site.Pages) {
		t.Fatalf("discovered more pages than exist: %d > %d", len(got)-1, len(site.Pages))
	}
}

func TestDiscoverIgnoresExternalLinks(t *testing.T) {
	// Subpages sometimes link to partner-site.example; those must never be
	// discovered as subpages.
	site := discoverySite(t, 5, func(s *webgen.Site) bool { return len(s.Pages) >= 5 })
	for _, p := range DiscoverPages(site, 0) {
		if strings.Contains(p.URL, "partner-site") {
			t.Fatalf("external link discovered: %s", p.URL)
		}
	}
}

func TestRenderedHTMLRoundTripsThroughExtractor(t *testing.T) {
	site := discoverySite(t, 8, func(s *webgen.Site) bool { return len(s.Pages) >= 3 })
	html := webgen.RenderHTML(site.Landing)
	links := linkextract.Extract(html, site.Landing.URL)
	if len(links.Anchors) < len(site.Landing.Links) {
		t.Errorf("extractor found %d anchors, spec has %d links", len(links.Anchors), len(site.Landing.Links))
	}
	// Depth-one stylesheets and scripts appear as tags.
	if len(links.Stylesheets) == 0 {
		t.Error("no stylesheets extracted from rendered HTML")
	}
	if len(links.Scripts) == 0 {
		t.Error("no scripts extracted from rendered HTML")
	}
	if len(links.Images) == 0 {
		t.Error("no images extracted from rendered HTML")
	}
}
