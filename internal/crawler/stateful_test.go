package crawler

import (
	"context"
	"sync"
	"testing"

	"webmeasure/internal/browser"
	"webmeasure/internal/measurement"
	"webmeasure/internal/tranco"
	"webmeasure/internal/webgen"
)

// TestStatefulAccumulatesCookies verifies the Appendix C design choice:
// stateful crawls carry cookies across a site's pages, so later visits
// observe cookies set earlier; stateless visits never do.
func TestStatefulAccumulatesCookies(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(17))
	list := tranco.Generate(30, 17)
	// Find a reachable site with several pages.
	var entry tranco.Entry
	for _, e := range list.Entries() {
		s := u.GenerateSite(e)
		if !s.Unreachable && len(s.Pages) >= 4 {
			entry = e
			break
		}
	}
	if entry.Site == "" {
		t.Skip("no suitable site found")
	}
	profiles := browser.DefaultProfiles()[1:2] // Sim1 only

	run := func(stateful bool) []int {
		ds, _, err := Run(context.Background(), Config{
			Universe: u, Sites: []tranco.Entry{entry}, MaxPages: 4,
			Instances: 2, Seed: 17, Stateful: stateful, Profiles: profiles,
		})
		if err != nil {
			t.Fatal(err)
		}
		var counts []int
		for _, pv := range ds.Pages() {
			if v := pv.ByProfile["Sim1"]; v != nil && v.Success {
				counts = append(counts, len(v.Cookies))
			}
		}
		return counts
	}

	stateless := run(false)
	stateful := run(true)
	if len(stateful) < 2 || len(stateless) < 2 {
		t.Skipf("too few successful visits: %d/%d", len(stateful), len(stateless))
	}
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	// Carrying the jar across pages means later pages report the union of
	// earlier cookies: strictly more observations in total.
	if sum(stateful) <= sum(stateless) {
		t.Errorf("stateful cookies (%d) should exceed stateless (%d)",
			sum(stateful), sum(stateless))
	}
}

// TestStatefulDeterministic: the sequential session is still a pure
// function of the seed.
func TestStatefulDeterministic(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(3))
	list := tranco.Generate(5, 3)
	cfg := Config{
		Universe: u, Sites: list.Entries(), MaxPages: 3,
		Seed: 3, Stateful: true, Profiles: browser.DefaultProfiles()[:2],
	}
	a, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lens differ: %d vs %d", a.Len(), b.Len())
	}
	pa, pb := a.Pages(), b.Pages()
	for i := range pa {
		for prof, va := range pa[i].ByProfile {
			vb := pb[i].ByProfile[prof]
			if len(va.Cookies) != len(vb.Cookies) || len(va.Requests) != len(vb.Requests) {
				t.Fatalf("page %v profile %s differs across runs", pa[i].Key, prof)
			}
		}
	}
}

// TestResumeReusesVisits: an interrupted crawl continues from a checkpoint
// without redoing completed visits, and produces the same dataset a fresh
// full crawl would.
func TestResumeReusesVisits(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(29))
	list := tranco.Generate(10, 29)
	profiles := browser.DefaultProfiles()[:3]
	full := Config{
		Universe: u, Sites: list.Entries(), MaxPages: 3,
		Instances: 3, Seed: 29, Profiles: profiles,
	}

	// The "interrupted" crawl covered only the first 4 sites.
	partialCfg := full
	partialCfg.Sites = list.Entries()[:4]
	partial, _, err := Run(context.Background(), partialCfg)
	if err != nil {
		t.Fatal(err)
	}

	resumed := full
	resumed.Resume = partial
	ds, st, err := Run(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if st.VisitsReused == 0 {
		t.Fatal("no visits reused from the checkpoint")
	}
	if st.VisitsReused > partial.Len() {
		t.Fatalf("reused %d > checkpoint size %d", st.VisitsReused, partial.Len())
	}

	fresh, _, err := Run(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != fresh.Len() {
		t.Fatalf("resumed dataset %d visits vs fresh %d", ds.Len(), fresh.Len())
	}
	fp, rp := fresh.Pages(), ds.Pages()
	for i := range fp {
		for prof, fv := range fp[i].ByProfile {
			rv := rp[i].ByProfile[prof]
			if rv == nil || fv.Success != rv.Success || len(fv.Requests) != len(rv.Requests) {
				t.Fatalf("page %v profile %s differs between fresh and resumed", fp[i].Key, prof)
			}
		}
	}
}

// TestResumeRetriesFailures: failed visits in the checkpoint are not
// reused (a resume is the chance to retry them).
func TestResumeRetriesFailures(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(31))
	list := tranco.Generate(6, 31)
	cfg := Config{
		Universe: u, Sites: list.Entries(), MaxPages: 3,
		Instances: 2, Seed: 31, Profiles: browser.DefaultProfiles()[:2],
	}
	first, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for _, v := range first.Visits() {
		if !v.Success {
			failures++
		}
	}
	if failures == 0 {
		t.Skip("no failures to retry at this seed")
	}
	cfg.Resume = first
	_, st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.VisitsReused != first.Len()-failures {
		t.Errorf("reused %d, want successes only (%d)", st.VisitsReused, first.Len()-failures)
	}
}

// TestEpochChangesCrawl: the same configuration at a later epoch observes
// a drifted web.
func TestEpochChangesCrawl(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(37))
	list := tranco.Generate(8, 37)
	base := Config{
		Universe: u, Sites: list.Entries(), MaxPages: 4,
		Instances: 3, Seed: 37, Profiles: browser.DefaultProfiles()[:2],
	}
	d0, _, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	later := base
	later.Epoch = 3
	d3, _, err := Run(context.Background(), later)
	if err != nil {
		t.Fatal(err)
	}
	set := func(visits []*measurement.Visit) map[string]bool {
		out := map[string]bool{}
		for _, v := range visits {
			for _, r := range v.Requests {
				out[r.URL] = true
			}
		}
		return out
	}
	s0, s3 := set(d0.Visits()), set(d3.Visits())
	if len(s0) == 0 || len(s3) == 0 {
		t.Fatal("empty crawls")
	}
	diff := 0
	for u3 := range s3 {
		if !s0[u3] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("epoch 3 observed no new URLs — drift dead at the crawler level")
	}
}

// TestOnVisitStreamsEverything: the streaming sink sees exactly the visits
// the dataset records, including reused checkpoint entries.
func TestOnVisitStreamsEverything(t *testing.T) {
	u := webgen.New(webgen.DefaultConfig(41))
	list := tranco.Generate(6, 41)
	var mu sync.Mutex
	var streamed int
	cfg := Config{
		Universe: u, Sites: list.Entries(), MaxPages: 3,
		Instances: 3, Seed: 41, Profiles: browser.DefaultProfiles()[:2],
		OnVisit: func(v *measurement.Visit) {
			mu.Lock()
			streamed++
			mu.Unlock()
		},
	}
	ds, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if streamed != ds.Len() {
		t.Errorf("streamed %d visits, dataset has %d", streamed, ds.Len())
	}
	// Resume path streams reused visits too.
	streamed = 0
	cfg.Resume = ds
	ds2, st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.VisitsReused == 0 {
		t.Fatal("nothing reused")
	}
	if streamed != ds2.Len() {
		t.Errorf("resume streamed %d visits, dataset has %d", streamed, ds2.Len())
	}
}
