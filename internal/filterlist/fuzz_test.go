package filterlist

import "testing"

// FuzzParseRule: arbitrary rule lines must parse or error, never panic,
// and parsed rules must be matchable against arbitrary URLs.
func FuzzParseRule(f *testing.F) {
	for _, s := range []string{
		"||ads.example.com^",
		"/track/^$third-party,image",
		"@@||good.example/path$script",
		"|https://exact.example/x|",
		"a*b*c^",
		"$domain=a.example|~b.example",
		"!comment",
		"##cosmetic",
		"pattern$unknown=opt",
	} {
		f.Add(s, "https://host.example/track/p.gif?x=1")
	}
	f.Fuzz(func(t *testing.T, line, url string) {
		r, err := ParseRule(line)
		if err != nil || r == nil {
			return
		}
		// Matching must not panic on arbitrary URLs.
		_ = r.MatchRequest(Request{URL: url, PageURL: "https://page.example/", Type: TypeScript})
	})
}

// FuzzListMatch: a compiled list must agree with a fresh compile of the
// same text (determinism) and never panic.
func FuzzListMatch(f *testing.F) {
	f.Add("||t.example^\n/px^$image\n@@||t.example/ok/", "https://t.example/px.gif")
	f.Add("a*b\nc^d", "https://acb.example/c/d")
	f.Fuzz(func(t *testing.T, text, url string) {
		l1, _ := Parse(text)
		l2, _ := Parse(text)
		req := Request{URL: url, PageURL: "https://p.example/", Type: TypeImage}
		if l1.Matches(req) != l2.Matches(req) {
			t.Fatal("parsing not deterministic")
		}
	})
}
