// Package filterlist implements an Adblock-Plus-syntax filter list engine —
// the role EasyList plays in the paper (§3.2 "Identifying Tracking
// Requests"): a request is a tracking request iff its URL matches the list.
//
// The engine supports the rule features EasyList relies on:
//
//   - plain substring patterns with "*" wildcards,
//   - the "^" separator placeholder,
//   - "||" domain-boundary anchors, "|" start/end anchors,
//   - "@@" exception rules,
//   - the $third-party / $~third-party option,
//   - $domain= restrictions (with ~ negation),
//   - resource-type options ($script, $image, $subdocument, ...),
//
// and uses a token index so matching stays fast on large lists.
package filterlist

import (
	"fmt"
	"strings"
)

// RequestType classifies the resource a request loads, mirroring the ABP
// type options.
type RequestType uint16

// Request types understood by the matcher. TypeAny matches every type.
const (
	TypeScript RequestType = 1 << iota
	TypeImage
	TypeStylesheet
	TypeSubdocument
	TypeXMLHTTPRequest
	TypeWebSocket
	TypeFont
	TypeMedia
	TypePing // ABP's name for beacons
	TypeDocument
	TypeCSPReport
	TypeOther

	TypeAny RequestType = 0xffff
)

var typeNames = map[string]RequestType{
	"script":         TypeScript,
	"image":          TypeImage,
	"stylesheet":     TypeStylesheet,
	"subdocument":    TypeSubdocument,
	"xmlhttprequest": TypeXMLHTTPRequest,
	"websocket":      TypeWebSocket,
	"font":           TypeFont,
	"media":          TypeMedia,
	"ping":           TypePing,
	"beacon":         TypePing, // alias
	"document":       TypeDocument,
	"csp-report":     TypeCSPReport,
	"other":          TypeOther,
}

// Rule is one parsed filter rule.
type Rule struct {
	// Raw is the original rule text.
	Raw string
	// Exception is true for "@@" rules.
	Exception bool

	pattern      string   // lower-cased pattern with anchors stripped
	segments     []string // pattern split on '*'; empty segments removed
	anchorDomain bool     // "||" prefix
	anchorStart  bool     // "|" prefix
	anchorEnd    bool     // "|" suffix

	// Option state. thirdParty: 0 = unconstrained, 1 = third-party only,
	// 2 = first-party only.
	thirdParty     uint8
	includeDomains []string
	excludeDomains []string
	types          RequestType
}

// ParseRule parses one rule line. Comments ("!") and cosmetic rules
// ("##"/"#@#") return (nil, nil): they are ignored, not errors, matching how
// consumers skip them when loading EasyList.
func ParseRule(line string) (*Rule, error) {
	raw := line
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
		return nil, nil
	}
	if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
		return nil, nil // element-hiding rules have no network effect
	}
	r := &Rule{Raw: raw, types: TypeAny}
	if strings.HasPrefix(line, "@@") {
		r.Exception = true
		line = line[2:]
	}
	// Split off options at the last '$' that is followed by a plausible
	// option list (EasyList convention).
	if i := strings.LastIndexByte(line, '$'); i >= 0 && i < len(line)-1 && looksLikeOptions(line[i+1:]) {
		if err := r.parseOptions(line[i+1:]); err != nil {
			return nil, err
		}
		line = line[:i]
	}
	if strings.HasPrefix(line, "||") {
		r.anchorDomain = true
		line = line[2:]
	} else if strings.HasPrefix(line, "|") {
		r.anchorStart = true
		line = line[1:]
	}
	if strings.HasSuffix(line, "|") {
		r.anchorEnd = true
		line = line[:len(line)-1]
	}
	if line == "" || strings.Trim(line, "*") == "" {
		return nil, fmt.Errorf("filterlist: rule %q has an empty pattern", raw)
	}
	r.pattern = strings.ToLower(line)
	for _, seg := range strings.Split(r.pattern, "*") {
		if seg != "" {
			r.segments = append(r.segments, seg)
		}
	}
	// A pattern beginning with '*' cancels the start anchors.
	if strings.HasPrefix(r.pattern, "*") {
		r.anchorStart, r.anchorDomain = false, false
	}
	if strings.HasSuffix(r.pattern, "*") {
		r.anchorEnd = false
	}
	return r, nil
}

func looksLikeOptions(s string) bool {
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimPrefix(strings.TrimSpace(opt), "~")
		name, _, _ := strings.Cut(opt, "=")
		switch name {
		case "third-party", "domain", "match-case":
		default:
			if _, ok := typeNames[name]; !ok {
				return false
			}
		}
	}
	return true
}

func (r *Rule) parseOptions(s string) error {
	var include RequestType
	var exclude RequestType
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimSpace(opt)
		negated := strings.HasPrefix(opt, "~")
		if negated {
			opt = opt[1:]
		}
		name, val, hasVal := strings.Cut(opt, "=")
		switch name {
		case "third-party":
			if negated {
				r.thirdParty = 2
			} else {
				r.thirdParty = 1
			}
		case "domain":
			if !hasVal || val == "" {
				return fmt.Errorf("filterlist: empty domain option in %q", r.Raw)
			}
			for _, d := range strings.Split(val, "|") {
				d = strings.ToLower(strings.TrimSpace(d))
				if strings.HasPrefix(d, "~") {
					r.excludeDomains = append(r.excludeDomains, d[1:])
				} else {
					r.includeDomains = append(r.includeDomains, d)
				}
			}
		case "match-case":
			// Accepted and ignored: the engine matches case-insensitively,
			// which is what EasyList consumers overwhelmingly do.
		default:
			t, ok := typeNames[name]
			if !ok {
				return fmt.Errorf("filterlist: unknown option %q in %q", name, r.Raw)
			}
			if negated {
				exclude |= t
			} else {
				include |= t
			}
		}
	}
	switch {
	case include != 0:
		r.types = include
	case exclude != 0:
		r.types = TypeAny &^ exclude
	}
	return nil
}
