package filterlist

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// memoTestList compiles a list exercising every context a rule can read:
// plain patterns, domain anchors, $third-party, $domain include/exclude,
// and type options — the dimensions the memo key must capture.
func memoTestList(t *testing.T) *List {
	t.Helper()
	l, skipped := Parse(`
/banner/ad
||tracker.example^
||cdn.example/pix$third-party
/widget$domain=site.example|other.example
/analytics$domain=~quiet.example
/video$media
@@||tracker.example/allowed^
`)
	if skipped != 0 {
		t.Fatalf("%d test rules skipped", skipped)
	}
	return l
}

// memoRandRequests draws requests over a small pool of URLs, pages, and
// types so repeats (cache hits) and collisions are frequent.
func memoRandRequests(rng *rand.Rand, n int) []Request {
	urls := []string{
		"https://a.example/banner/ad.png",
		"https://tracker.example/t.js",
		"https://tracker.example/allowed/t.js",
		"https://cdn.example/pix.gif",
		"https://site.example/widget.js",
		"https://b.example/analytics.js",
		"https://c.example/video.mp4",
		"https://c.example/plain.css",
	}
	pages := []string{
		"https://site.example/index",
		"https://other.example/a",
		"https://quiet.example/b",
		"https://cdn.example/self",
		"",
	}
	types := []RequestType{TypeScript, TypeImage, TypeMedia, TypeStylesheet, 0}
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{
			URL:     urls[rng.Intn(len(urls))],
			PageURL: pages[rng.Intn(len(pages))],
			Type:    types[rng.Intn(len(types))],
		}
	}
	return out
}

// TestMemoMatchesList pins the memo to the direct engine on randomized
// request streams: no cached decision may ever differ, whatever mix of
// $domain, $third-party, and type options the rules carry.
func TestMemoMatchesList(t *testing.T) {
	l := memoTestList(t)
	m := NewMemo(l, 0)
	rng := rand.New(rand.NewSource(51))
	for i, req := range memoRandRequests(rng, 5000) {
		if got, want := m.Matches(req), l.Matches(req); got != want {
			t.Fatalf("request %d (%+v): memo %v != direct %v", i, req, got, want)
		}
	}
	hits, misses := m.Stats()
	if hits == 0 {
		t.Error("a repeating request stream must produce cache hits")
	}
	if misses == 0 {
		t.Error("a fresh memo must record misses")
	}
}

func TestMemoEvictionBound(t *testing.T) {
	l := memoTestList(t)
	m := NewMemo(l, 8)
	for i := 0; i < 100; i++ {
		m.Matches(Request{
			URL:     fmt.Sprintf("https://bulk.example/r%d", i),
			PageURL: "https://site.example/",
			Type:    TypeScript,
		})
	}
	if n := m.Len(); n != 8 {
		t.Fatalf("LRU holds %d entries, capacity is 8", n)
	}
	// The most recent entry must still be cached.
	before, _ := m.Stats()
	m.Matches(Request{URL: "https://bulk.example/r99", PageURL: "https://site.example/", Type: TypeScript})
	if after, _ := m.Stats(); after != before+1 {
		t.Error("most recently inserted entry was evicted")
	}
}

func TestMemoKeySeparatesContexts(t *testing.T) {
	l := memoTestList(t)
	m := NewMemo(l, 0)
	// Same URL, different page: $domain=site.example matches only on the
	// listed sites — a shared cache slot would leak the first answer.
	widget := "https://site.example/widget.js"
	if !m.Matches(Request{URL: widget, PageURL: "https://site.example/p", Type: TypeScript}) {
		t.Error("widget must match on site.example")
	}
	if m.Matches(Request{URL: widget, PageURL: "https://elsewhere.example/p", Type: TypeScript}) {
		t.Error("widget must not match on elsewhere.example")
	}
	// Same URL and page, different type: $media only matches media.
	video := "https://c.example/video.mp4"
	if !m.Matches(Request{URL: video, PageURL: "https://site.example/p", Type: TypeMedia}) {
		t.Error("video must match as media")
	}
	if m.Matches(Request{URL: video, PageURL: "https://site.example/p", Type: TypeScript}) {
		t.Error("video must not match as script")
	}
	// Same host, different full page URL: the key is the page *host*, so
	// the second lookup must be a hit with the identical decision.
	hitsBefore, _ := m.Stats()
	if !m.Matches(Request{URL: widget, PageURL: "https://site.example/other-page", Type: TypeScript}) {
		t.Error("widget must match on any site.example page")
	}
	if hitsAfter, _ := m.Stats(); hitsAfter != hitsBefore+1 {
		t.Error("same page host must hit the cache")
	}
}

// TestMemoConcurrent hammers one memo from several goroutines so -race
// audits the locking, and every returned decision is still correct.
func TestMemoConcurrent(t *testing.T) {
	l := memoTestList(t)
	m := NewMemo(l, 64)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for _, req := range memoRandRequests(rng, 500) {
				if got, want := m.Matches(req), l.Matches(req); got != want {
					select {
					case errs <- fmt.Sprintf("%+v: memo %v != direct %v", req, got, want):
					default:
					}
					return
				}
			}
		}(int64(60 + w))
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}
