package filterlist

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustRule(t *testing.T, line string) *Rule {
	t.Helper()
	r, err := ParseRule(line)
	if err != nil {
		t.Fatalf("ParseRule(%q): %v", line, err)
	}
	if r == nil {
		t.Fatalf("ParseRule(%q): unexpectedly ignored", line)
	}
	return r
}

func req(url string) Request {
	return Request{URL: url, PageURL: "https://site.example/page", Type: TypeScript}
}

func TestPlainSubstring(t *testing.T) {
	r := mustRule(t, "/banner/ad")
	if !r.MatchRequest(req("https://x.com/banner/ad.png")) {
		t.Error("substring should match")
	}
	if r.MatchRequest(req("https://x.com/banner/video.png")) {
		t.Error("should not match")
	}
}

func TestWildcard(t *testing.T) {
	r := mustRule(t, "/ads/*/banner")
	if !r.MatchRequest(req("https://x.com/ads/v2/banner.gif")) {
		t.Error("wildcard should match")
	}
	if r.MatchRequest(req("https://x.com/ads/banner")) {
		// '*' may match the empty string in ABP; /ads//banner would match,
		// but /ads/banner lacks the second slash... actually '*' can match
		// empty, making "/ads/" + "" + "/banner" require "/ads//banner".
		// "/ads/banner" has only one slash between, so no match.
		t.Error("should not match without intermediate segment")
	}
}

func TestWildcardMatchesEmpty(t *testing.T) {
	r := mustRule(t, "ad*s")
	if !r.MatchRequest(req("https://x.com/ads")) {
		t.Error("'*' should match the empty string")
	}
}

func TestSeparator(t *testing.T) {
	r := mustRule(t, "/track^")
	if !r.MatchRequest(req("https://x.com/track?id=1")) {
		t.Error("^ should match '?'")
	}
	if !r.MatchRequest(req("https://x.com/track/px.gif")) {
		t.Error("^ should match '/'")
	}
	if !r.MatchRequest(req("https://x.com/track")) {
		t.Error("^ should match end of URL")
	}
	if r.MatchRequest(req("https://x.com/tracker")) {
		t.Error("^ must not match a letter")
	}
	if r.MatchRequest(req("https://x.com/track-me")) {
		t.Error("^ must not match '-'")
	}
}

func TestDomainAnchor(t *testing.T) {
	r := mustRule(t, "||ads.example.com^")
	if !r.MatchRequest(req("https://ads.example.com/x.js")) {
		t.Error("should match at host start")
	}
	if !r.MatchRequest(req("https://sub.ads.example.com/x.js")) {
		t.Error("should match after a dot")
	}
	if r.MatchRequest(req("https://badads.example.com/x.js")) {
		t.Error("must not match mid-label")
	}
	if r.MatchRequest(req("https://example.com/ads.example.com/x.js")) {
		t.Error("must not match in the path")
	}
}

func TestStartEndAnchors(t *testing.T) {
	r := mustRule(t, "|https://cdn.")
	if !r.MatchRequest(req("https://cdn.x.com/a.js")) {
		t.Error("start anchor should match")
	}
	if r.MatchRequest(req("http://x.com/https://cdn.")) {
		t.Error("start anchor must match position 0 only")
	}
	r = mustRule(t, ".swf|")
	if !r.MatchRequest(req("https://x.com/movie.swf")) {
		t.Error("end anchor should match")
	}
	if r.MatchRequest(req("https://x.com/movie.swf?x=1")) {
		t.Error("end anchor must match URL end only")
	}
}

func TestThirdPartyOption(t *testing.T) {
	r := mustRule(t, "/pixel$third-party")
	third := Request{URL: "https://tracker.net/pixel.gif", PageURL: "https://site.example/", Type: TypeImage}
	first := Request{URL: "https://site.example/pixel.gif", PageURL: "https://site.example/", Type: TypeImage}
	if !r.MatchRequest(third) {
		t.Error("third-party request should match")
	}
	if r.MatchRequest(first) {
		t.Error("first-party request must not match $third-party")
	}
	r = mustRule(t, "/pixel$~third-party")
	if r.MatchRequest(third) || !r.MatchRequest(first) {
		t.Error("~third-party inverted")
	}
}

func TestDomainOption(t *testing.T) {
	r := mustRule(t, "/ad.js$domain=news.example|~blog.news.example")
	on := Request{URL: "https://cdn.net/ad.js", PageURL: "https://news.example/p", Type: TypeScript}
	sub := Request{URL: "https://cdn.net/ad.js", PageURL: "https://www.news.example/p", Type: TypeScript}
	excluded := Request{URL: "https://cdn.net/ad.js", PageURL: "https://blog.news.example/p", Type: TypeScript}
	off := Request{URL: "https://cdn.net/ad.js", PageURL: "https://other.example/p", Type: TypeScript}
	if !r.MatchRequest(on) || !r.MatchRequest(sub) {
		t.Error("domain include should match site and subdomains")
	}
	if r.MatchRequest(excluded) {
		t.Error("negated domain must win")
	}
	if r.MatchRequest(off) {
		t.Error("other domains must not match")
	}
}

func TestTypeOptions(t *testing.T) {
	r := mustRule(t, "/ads/$script,image")
	if !r.MatchRequest(Request{URL: "https://x.com/ads/a.js", Type: TypeScript}) {
		t.Error("script should match")
	}
	if r.MatchRequest(Request{URL: "https://x.com/ads/a.css", Type: TypeStylesheet}) {
		t.Error("stylesheet must not match $script,image")
	}
	r = mustRule(t, "/ads/$~image")
	if r.MatchRequest(Request{URL: "https://x.com/ads/a.gif", Type: TypeImage}) {
		t.Error("~image must exclude images")
	}
	if !r.MatchRequest(Request{URL: "https://x.com/ads/a.js", Type: TypeScript}) {
		t.Error("~image must keep scripts")
	}
}

func TestExceptionRules(t *testing.T) {
	l, skipped := Parse("||tracker.net^\n@@||tracker.net/allowed/$script\n")
	if skipped != 0 {
		t.Fatalf("skipped = %d", skipped)
	}
	if !l.Matches(req("https://tracker.net/pixel.gif")) {
		t.Error("block rule should apply")
	}
	if l.Matches(req("https://tracker.net/allowed/lib.js")) {
		t.Error("exception should override")
	}
}

func TestParseIgnoresCommentsAndCosmetic(t *testing.T) {
	text := `! comment
[Adblock Plus 2.0]
example.com##.ad-banner
##.generic-ad
||real-rule.net^
`
	l, skipped := Parse(text)
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestParseSkipsBadRules(t *testing.T) {
	l, skipped := Parse("||good.net^\n$unknownopt=x\n*\n")
	// "$unknownopt=x" has no recognizable option → it is treated as a
	// pattern containing '$', which is fine; "*" alone is an empty pattern.
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if l.Len() < 1 {
		t.Error("good rule lost")
	}
}

func TestDollarInPatternNotOptions(t *testing.T) {
	r := mustRule(t, "/path$weird")
	if r.pattern != "/path$weird" {
		t.Errorf("pattern = %q, want the $ kept", r.pattern)
	}
}

func TestTokenIndexSoundness(t *testing.T) {
	// The unanchored rule "track" must match inside a longer run; the index
	// must not lose it.
	l, _ := Parse("track\n")
	if !l.Matches(req("https://x.com/xtracky.js")) {
		t.Error("token index caused a missed substring match")
	}
	// Domain-anchored rule: token at pattern start is boundary-safe.
	l, _ = Parse("||example-ads.com^\n")
	if !l.Matches(req("https://example-ads.com/a.js")) {
		t.Error("anchored rule should match")
	}
	if l.Matches(req("https://notexample-ads.com.evil.net/a.js")) == false {
		// ||example-ads.com^ matches "example-ads.com." after the dot? The
		// host is notexample-ads.com.evil.net: positions after dots are
		// "com.evil.net" and "evil.net" and "net" — none starts with
		// "example-ads.com^", and host start is "notexample..." so no match.
		_ = l
	}
	if l.Matches(req("https://notexample-ads.com/a.js")) {
		t.Error("mid-label host match must not happen")
	}
}

// Property: List.Matches is equivalent to linearly scanning all rules. This
// guards the token index against missed matches on arbitrary inputs.
func TestIndexEquivalentToLinearScan(t *testing.T) {
	rules := []string{
		"||ads-syndication.example^",
		"/track/^$third-party",
		"/pixel$image",
		"banner*ad",
		"|https://collect.",
		".gif|",
		"@@||ads-syndication.example/safe/",
	}
	text := strings.Join(rules, "\n")
	l, skipped := Parse(text)
	if skipped != 0 {
		t.Fatalf("skipped = %d", skipped)
	}
	var parsed []*Rule
	for _, line := range rules {
		r, _ := ParseRule(line)
		parsed = append(parsed, r)
	}
	linear := func(rq Request) bool {
		blocked := false
		for _, r := range parsed {
			if !r.Exception && r.MatchRequest(rq) {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
		for _, r := range parsed {
			if r.Exception && r.MatchRequest(rq) {
				return false
			}
		}
		return true
	}
	hosts := []string{"ads-syndication.example", "cdn.site.example", "collect.stats.net", "x.com"}
	paths := []string{"/track/", "/pixel.gif", "/banner/big-ad.js", "/safe/lib.js", "/a.gif", "/app.js"}
	types := []RequestType{TypeScript, TypeImage, TypeStylesheet, TypePing}
	f := func(h, p, ty uint8) bool {
		rq := Request{
			URL:     "https://" + hosts[int(h)%len(hosts)] + paths[int(p)%len(paths)],
			PageURL: "https://site.example/page",
			Type:    types[int(ty)%len(types)],
		}
		return l.Matches(rq) == linear(rq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestMatchCaseInsensitive(t *testing.T) {
	r := mustRule(t, "/TRACK/")
	if !r.MatchRequest(req("https://x.com/track/a.js")) {
		t.Error("matching should be case-insensitive")
	}
}

func BenchmarkListMatch(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 500; i++ {
		sb.WriteString("||tracker-")
		sb.WriteByte(byte('a' + i%26))
		sb.WriteString("-net.example^\n")
	}
	sb.WriteString("/track/^\n/pixel$image\n")
	l, _ := Parse(sb.String())
	rq := Request{URL: "https://cdn.site.example/assets/app.js?v=3", PageURL: "https://site.example/", Type: TypeScript}
	hit := Request{URL: "https://stats.net/track/p.gif", PageURL: "https://site.example/", Type: TypeImage}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Matches(rq)
		l.Matches(hit)
	}
}

func TestMerge(t *testing.T) {
	a, _ := Parse("||tracker-a.example^\n@@||tracker-a.example/ok/\n")
	b, _ := Parse("/telemetry^\n")
	m := Merge(a, b, nil)
	if m.Len() != a.Len()+b.Len() {
		t.Errorf("merged Len = %d, want %d", m.Len(), a.Len()+b.Len())
	}
	if !m.Matches(req("https://tracker-a.example/p.gif")) {
		t.Error("rule from first list lost")
	}
	if !m.Matches(req("https://x.example/telemetry/x")) {
		t.Error("rule from second list lost")
	}
	if m.Matches(req("https://tracker-a.example/ok/x.js")) {
		t.Error("exception from first list lost")
	}
	if m.Matches(req("https://clean.example/app.js")) {
		t.Error("merged list over-matches")
	}
	if empty := Merge(); empty.Matches(req("https://x.example/telemetry")) {
		t.Error("empty merge must match nothing")
	}
}

func TestMatchEmptyURL(t *testing.T) {
	// Regression: an unanchored rule matched against an empty URL used to
	// slice out of range (found by FuzzParseRule).
	r := mustRule(t, "trac*.^x")
	if r.MatchRequest(Request{URL: "", PageURL: "https://p.example/", Type: TypeScript}) {
		t.Error("empty URL must not match")
	}
	l, _ := Parse("track\n||d.example^\n")
	if l.Matches(Request{URL: "", PageURL: "https://p.example/", Type: TypeScript}) {
		t.Error("empty URL must not match any list")
	}
}
