package filterlist

import (
	"container/list"
	"strconv"
	"sync"

	"webmeasure/internal/urlutil"
)

// Memo wraps a List with a bounded LRU over match decisions, so EasyList
// matching is paid once per unique request instead of once per visit: the
// same tracker URL re-requested by every page and profile of a crawl hits
// the cache after its first classification.
//
// The cache key is (URL, page host, resource type). The page host subsumes
// everything a rule can read from the issuing page — the $third-party bit
// (urlutil.IsThirdParty compares registrable domains, a pure function of
// the two hosts) and the $domain include/exclude lists — so two requests
// with equal keys always match identically.
type Memo struct {
	list *List
	cap  int

	mu  sync.Mutex
	lru *list.List // most-recent first; values are *memoEntry
	idx map[string]*list.Element

	// One-entry page-URL → host cache: Build classifies a whole visit
	// against one page URL, so the host parse is paid once per page, not
	// once per request.
	lastPageURL string
	lastHost    string

	hits, misses uint64
}

type memoEntry struct {
	key string
	val bool
}

// DefaultMemoSize bounds the match memo used by the tree builder: large
// enough to hold every unique (URL, host, type) of a multi-thousand-page
// crawl, small enough to stay a few megabytes of keys.
const DefaultMemoSize = 1 << 16

// NewMemo builds a match memo over l holding up to capacity decisions
// (capacity <= 0 selects DefaultMemoSize).
func NewMemo(l *List, capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoSize
	}
	return &Memo{
		list: l,
		cap:  capacity,
		lru:  list.New(),
		idx:  make(map[string]*list.Element, capacity/4),
	}
}

// List returns the wrapped filter list.
func (m *Memo) List() *List { return m.list }

// Matches is List.Matches behind the memo.
func (m *Memo) Matches(req Request) bool {
	m.mu.Lock()
	host := m.lastHost
	if req.PageURL != m.lastPageURL {
		m.mu.Unlock()
		host = urlutil.Host(req.PageURL)
		m.mu.Lock()
		m.lastPageURL, m.lastHost = req.PageURL, host
	}
	key := req.URL + "\x00" + host + "\x00" + strconv.Itoa(int(req.Type))
	if el, ok := m.idx[key]; ok {
		m.hits++
		m.lru.MoveToFront(el)
		val := el.Value.(*memoEntry).val
		m.mu.Unlock()
		return val
	}
	m.misses++
	m.mu.Unlock()

	// Match outside the lock so a miss does not serialize the worker
	// pool on the rule engine; concurrent misses on the same key just
	// compute the same decision twice.
	val := m.list.Matches(req)

	m.mu.Lock()
	if _, ok := m.idx[key]; !ok {
		m.idx[key] = m.lru.PushFront(&memoEntry{key: key, val: val})
		for m.lru.Len() > m.cap {
			oldest := m.lru.Back()
			m.lru.Remove(oldest)
			delete(m.idx, oldest.Value.(*memoEntry).key)
		}
	}
	m.mu.Unlock()
	return val
}

// Stats returns the cumulative hit/miss counters.
func (m *Memo) Stats() (hits, misses uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// Len returns the number of cached decisions.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}
