package filterlist

import (
	"bufio"
	"strings"
)

// List is a compiled filter list with a token index for fast matching.
type List struct {
	// indexed maps a distinctive token to the block rules containing it.
	indexed map[string][]*Rule
	// untokenized holds block rules without a usable token.
	untokenized []*Rule
	exceptions  []*Rule
	ruleCount   int
}

// Parse compiles a filter list. Unparseable rules are skipped and counted,
// mirroring how browsers load crowd-sourced lists: one bad line must not
// disable blocking.
func Parse(text string) (*List, int) {
	l := &List{indexed: make(map[string][]*Rule)}
	skipped := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		rule, err := ParseRule(sc.Text())
		if err != nil {
			skipped++
			continue
		}
		if rule == nil {
			continue
		}
		l.add(rule)
	}
	return l, skipped
}

func (l *List) add(r *Rule) {
	l.ruleCount++
	if r.Exception {
		l.exceptions = append(l.exceptions, r)
		return
	}
	if tok := ruleToken(r); tok != "" {
		l.indexed[tok] = append(l.indexed[tok], r)
	} else {
		l.untokenized = append(l.untokenized, r)
	}
}

// Len returns the number of compiled rules (block + exception).
func (l *List) Len() int { return l.ruleCount }

// Merge combines several lists into one matcher — the §6 scenario of
// stacking EasyList with further lists (e.g. EasyPrivacy) for broader
// coverage. Rules keep their origin semantics; an exception in any list
// suppresses matches from all of them, which is how content blockers
// treat stacked subscriptions.
func Merge(lists ...*List) *List {
	out := &List{indexed: make(map[string][]*Rule)}
	for _, l := range lists {
		if l == nil {
			continue
		}
		for tok, rules := range l.indexed {
			out.indexed[tok] = append(out.indexed[tok], rules...)
		}
		out.untokenized = append(out.untokenized, l.untokenized...)
		out.exceptions = append(out.exceptions, l.exceptions...)
		out.ruleCount += l.ruleCount
	}
	return out
}

// Matches reports whether the request is blocked by the list: some block
// rule matches and no exception rule does. In the paper's usage a match
// means "tracking request".
func (l *List) Matches(req Request) bool {
	if !l.anyBlockMatch(req) {
		return false
	}
	for _, r := range l.exceptions {
		if r.MatchRequest(req) {
			return false
		}
	}
	return true
}

func (l *List) anyBlockMatch(req Request) bool {
	url := strings.ToLower(req.URL)
	seen := map[*Rule]bool{}
	for _, tok := range urlTokens(url) {
		for _, r := range l.indexed[tok] {
			if !seen[r] {
				seen[r] = true
				if r.MatchRequest(req) {
					return true
				}
			}
		}
	}
	for _, r := range l.untokenized {
		if r.MatchRequest(req) {
			return true
		}
	}
	return false
}

// minTokenLen is the shortest token worth indexing. Shorter runs are too
// common to discriminate.
const minTokenLen = 3

// ruleToken picks the longest literal alphanumeric run in the pattern that
// is guaranteed to appear as a *maximal* run in any matching URL, so the
// token index never causes a missed match. A run qualifies only when both
// of its sides are delimited: by a non-token byte inside the pattern, or by
// an anchor at the pattern's edge (the URL position there is a boundary).
// Runs touching a wildcard or an unanchored pattern edge may be substrings
// of a longer URL run and must not be indexed.
func ruleToken(r *Rule) string {
	best := ""
	for si, seg := range r.segments {
		start := -1
		for i := 0; i <= len(seg); i++ {
			alnum := i < len(seg) && isTokenByte(seg[i])
			if alnum && start < 0 {
				start = i
			}
			if !alnum && start >= 0 {
				leftOK := start > 0 ||
					(si == 0 && (r.anchorDomain || r.anchorStart) && !strings.HasPrefix(r.pattern, "*"))
				rightOK := i < len(seg) ||
					(si == len(r.segments)-1 && r.anchorEnd && !strings.HasSuffix(r.pattern, "*"))
				if run := seg[start:i]; leftOK && rightOK && len(run) > len(best) {
					best = run
				}
				start = -1
			}
		}
	}
	if len(best) < minTokenLen {
		return ""
	}
	return best
}

// urlTokens splits a lower-cased URL into its alphanumeric runs of at least
// minTokenLen bytes.
func urlTokens(url string) []string {
	var toks []string
	start := -1
	for i := 0; i <= len(url); i++ {
		alnum := i < len(url) && isTokenByte(url[i])
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			if i-start >= minTokenLen {
				toks = append(toks, url[start:i])
			}
			start = -1
		}
	}
	return toks
}

func isTokenByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
