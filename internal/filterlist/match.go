package filterlist

import (
	"strings"

	"webmeasure/internal/urlutil"
)

// Request carries the context the matcher needs: the request URL, the URL of
// the page issuing it (for $third-party and $domain), and the resource type.
type Request struct {
	URL     string
	PageURL string
	Type    RequestType
}

// MatchRequest reports whether the rule matches the request, considering the
// pattern and all options.
func (r *Rule) MatchRequest(req Request) bool {
	if r.types&req.Type == 0 && req.Type != 0 {
		return false
	}
	if r.thirdParty != 0 {
		tp := urlutil.IsThirdParty(req.URL, req.PageURL)
		if r.thirdParty == 1 && !tp {
			return false
		}
		if r.thirdParty == 2 && tp {
			return false
		}
	}
	if len(r.includeDomains) > 0 || len(r.excludeDomains) > 0 {
		host := urlutil.Host(req.PageURL)
		if len(r.includeDomains) > 0 && !domainInList(host, r.includeDomains) {
			return false
		}
		if domainInList(host, r.excludeDomains) {
			return false
		}
	}
	return r.matchURL(strings.ToLower(req.URL))
}

// domainInList reports whether host equals or is a subdomain of any entry.
func domainInList(host string, list []string) bool {
	for _, d := range list {
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}

// matchURL matches the rule pattern against a lower-cased URL.
func (r *Rule) matchURL(url string) bool {
	switch {
	case r.anchorStart:
		end, ok := r.matchSegmentsAt(url, 0)
		return ok && (!r.anchorEnd || end == len(url))
	case r.anchorDomain:
		for _, start := range domainAnchorPositions(url) {
			if end, ok := r.matchSegmentsAt(url, start); ok && (!r.anchorEnd || end == len(url)) {
				return true
			}
		}
		return false
	default:
		for start := 0; start <= len(url); start++ {
			if end, ok := r.matchSegmentsAt(url, start); ok && (!r.anchorEnd || end == len(url)) {
				return true
			}
			// Only the first segment's first byte constrains the start; skip
			// ahead cheaply when it is a literal.
			if len(r.segments) > 0 && r.segments[0][0] != '^' {
				if start+1 > len(url) {
					return false
				}
				if next := strings.IndexByte(url[start+1:], r.segments[0][0]); next >= 0 {
					start += next // loop increment adds 1
				} else {
					return false
				}
			}
		}
		return false
	}
}

// matchSegmentsAt matches all pattern segments beginning exactly at pos for
// the first segment, with later segments found anywhere after (wildcard
// semantics). It returns the position after the final segment.
func (r *Rule) matchSegmentsAt(url string, pos int) (int, bool) {
	if len(r.segments) == 0 {
		return pos, true
	}
	end, ok := matchSegmentAt(url, pos, r.segments[0])
	if !ok {
		return 0, false
	}
	pos = end
	for _, seg := range r.segments[1:] {
		found := false
		for p := pos; p <= len(url); p++ {
			if e, ok := matchSegmentAt(url, p, seg); ok {
				pos = e
				found = true
				break
			}
		}
		if !found {
			return 0, false
		}
	}
	return pos, true
}

// matchSegmentAt matches one wildcard-free segment at an exact position.
// '^' matches a separator character or the end of the URL (only as the
// final character of the segment).
func matchSegmentAt(url string, pos int, seg string) (int, bool) {
	for i := 0; i < len(seg); i++ {
		if seg[i] == '^' {
			if pos == len(url) {
				if i == len(seg)-1 {
					return pos, true
				}
				return 0, false
			}
			if !isSeparator(url[pos]) {
				return 0, false
			}
			pos++
			continue
		}
		if pos >= len(url) || url[pos] != seg[i] {
			return 0, false
		}
		pos++
	}
	return pos, true
}

// isSeparator implements ABP's separator class: anything that is not a
// letter, digit, or one of "_-.%".
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_' || c == '-' || c == '.' || c == '%':
		return false
	}
	return true
}

// domainAnchorPositions returns the positions in url where a "||" rule may
// start matching: the beginning of the host and after each dot inside it.
func domainAnchorPositions(url string) []int {
	hostStart := 0
	if i := strings.Index(url, "://"); i >= 0 {
		hostStart = i + 3
	}
	hostEnd := len(url)
	for i := hostStart; i < len(url); i++ {
		if c := url[i]; c == '/' || c == '?' || c == ':' || c == '#' {
			hostEnd = i
			break
		}
	}
	positions := []int{hostStart}
	for i := hostStart; i < hostEnd; i++ {
		if url[i] == '.' {
			positions = append(positions, i+1)
		}
	}
	return positions
}
