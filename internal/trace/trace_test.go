package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"webmeasure/internal/metrics"
)

// TestIDsDeterministic: trace and span IDs are pure functions of
// (seed, names, keys) — two tracers over the same logical work agree,
// and a different seed disagrees.
func TestIDsDeterministic(t *testing.T) {
	build := func(seed int64) (TraceID, SpanID, SpanID) {
		tr := New(Options{Seed: seed}).Trace("page", "site-a|https://a/x")
		root := tr.Span(nil, "crawl.visit", "Old", 100)
		child := tr.Span(root, "crawl.fetch", "Old#1", 100)
		return tr.ID, root.ID, child.ID
	}
	t1, r1, c1 := build(7)
	t2, r2, c2 := build(7)
	if t1 != t2 || r1 != r2 || c1 != c2 {
		t.Fatalf("same seed produced different IDs: %v/%v/%v vs %v/%v/%v", t1, r1, c1, t2, r2, c2)
	}
	t3, r3, c3 := build(8)
	if t1 == t3 && r1 == r3 && c1 == c3 {
		t.Fatal("different seed produced identical IDs")
	}
	if r1 == c1 {
		t.Fatal("parent and child span IDs collide")
	}
	if len(t1.String()) != 16 || len(r1.String()) != 16 {
		t.Fatalf("IDs must render as 16 hex digits, got %q / %q", t1, r1)
	}
}

// TestSiblingKeysDisambiguate: same span name under the same parent must
// yield distinct IDs when the keys differ.
func TestSiblingKeysDisambiguate(t *testing.T) {
	tr := New(Options{Seed: 1}).Trace("page", "k")
	root := tr.Span(nil, "crawl.visit", "Old", 0)
	a := tr.Span(root, "crawl.fetch", "Old#1", 0)
	b := tr.Span(root, "crawl.fetch", "Old#2", 0)
	if a.ID == b.ID {
		t.Fatal("sibling fetch attempts share a span ID")
	}
}

// TestSampling: head-based sampling keeps a deterministic subset and the
// same keys on every tracer with the same seed.
func TestSampling(t *testing.T) {
	keys := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		keys = append(keys, strings.Repeat("k", 1+i%7)+string(rune('a'+i%26)))
	}
	pick := func() map[string]bool {
		tc := New(Options{Seed: 3, SampleEvery: 10})
		kept := map[string]bool{}
		for _, k := range keys {
			if tc.Trace("page", k) != nil {
				kept[k] = true
			}
		}
		return kept
	}
	a, b := pick(), pick()
	if len(a) == 0 || len(a) == len(keys) {
		t.Fatalf("1-in-10 sampling kept %d of %d traces", len(a), len(keys))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("sampling is not deterministic: %q kept once", k)
		}
	}
	if len(a) != len(b) {
		t.Fatalf("sampling kept %d then %d", len(a), len(b))
	}
	// SampleEvery 1 keeps everything.
	full := New(Options{Seed: 3, SampleEvery: 1})
	for _, k := range keys {
		if full.Trace("page", k) == nil {
			t.Fatalf("unsampled tracer dropped %q", k)
		}
	}
}

// TestNilSafety: every method on nil tracer/trace/span is a no-op.
func TestNilSafety(t *testing.T) {
	var tc *Tracer
	if tc.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	tr := tc.Trace("page", "k")
	if tr != nil {
		t.Fatal("nil tracer handed out a trace")
	}
	s := tr.Span(nil, "x", "", 0)
	if s != nil {
		t.Fatal("nil trace handed out a span")
	}
	s.SetAttr("a", "b").SetAttrInt("c", 1)
	s.AddEvent("e", 0)
	s.End(10)
	if s.DurUS() != 0 || s.TraceID() != 0 || s.Trace() != nil {
		t.Fatal("nil span misbehaves")
	}
	if err := tc.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tc.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if got := tc.StageBreakdown(); got != nil {
		t.Fatalf("nil tracer breakdown = %v", got)
	}
	if tc.TraceCount() != 0 || tc.SpanCount() != 0 || tc.Dropped() != 0 {
		t.Fatal("nil tracer counts non-zero")
	}
}

// TestMaxTracesValve drops and counts traces beyond the cap.
func TestMaxTracesValve(t *testing.T) {
	tc := New(Options{Seed: 1, MaxTraces: 2})
	if tc.Trace("page", "a") == nil || tc.Trace("page", "b") == nil {
		t.Fatal("traces under the cap dropped")
	}
	if tc.Trace("page", "c") != nil {
		t.Fatal("trace beyond the cap retained")
	}
	if tc.Trace("page", "a") == nil {
		t.Fatal("existing trace refused after the cap filled")
	}
	if tc.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tc.Dropped())
	}
}

// populate records a deterministic little workload; spans are appended in
// an order unlike the canonical export order on purpose.
func populate(tc *Tracer) {
	tr := tc.Trace("page", "site-b|https://b/y")
	v := tr.Span(nil, "crawl.visit", "Sim1", 2_000_000).SetAttr("profile", "Sim1")
	f2 := tr.Span(v, "crawl.fetch", "Sim1#2", 2_500_000).SetAttr("profile", "Sim1")
	f2.End(2_600_000)
	f1 := tr.Span(v, "crawl.fetch", "Sim1#1", 2_000_000).SetAttr("profile", "Sim1")
	f1.AddEvent("retry.decided", 2_400_000, Attr{Key: "kind", Value: "latency"})
	f1.End(2_400_000)
	v.End(2_600_000)

	tr2 := tc.Trace("page", "site-a|https://a/x")
	b := tr2.Span(nil, "analyze.build", "Old", 600_000_000).SetAttrInt("requests", 12)
	b.End(600_000_240)
}

// TestExportOrderingDeterministic: exports sort by (trace name, key) and
// span (start, name, key, id), independent of insertion order.
func TestExportOrderingDeterministic(t *testing.T) {
	a, b := New(Options{Seed: 5}), New(Options{Seed: 5})
	populate(a)
	populate(b)
	var ja, jb bytes.Buffer
	if err := a.WriteJSONL(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Fatal("same workload produced different JSONL bytes")
	}
	lines := strings.Split(strings.TrimRight(ja.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL has %d lines, want 4", len(lines))
	}
	// site-a sorts before site-b; within site-b, the first fetch attempt
	// (start 2.0s, name before crawl.visit) precedes the visit span, and
	// the second attempt (start 2.5s) comes last.
	if !strings.Contains(lines[0], "analyze.build") {
		t.Fatalf("first line is not site-a's build span: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"crawl.fetch","start_us":2000000`) ||
		!strings.Contains(lines[3], `"crawl.fetch","start_us":2500000`) {
		t.Fatalf("fetch attempts out of order:\n%s\n%s", lines[1], lines[3])
	}
}

// TestChromeTraceShape validates the trace-event JSON: metadata names the
// processes/lanes, X events carry durations and IDs, instant events keep
// their scope.
func TestChromeTraceShape(t *testing.T) {
	tc := New(Options{Seed: 5})
	populate(tc)
	var buf bytes.Buffer
	if err := tc.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  *int64            `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	var meta, complete, instant int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
			if e.Args["name"] == "" {
				t.Fatalf("metadata event without name args: %+v", e)
			}
		case "X":
			complete++
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("X event %q without non-negative dur", e.Name)
			}
			if e.Args["trace_id"] == "" || e.Args["span_id"] == "" {
				t.Fatalf("X event %q missing ids: %v", e.Name, e.Args)
			}
			if e.Pid < 1 || e.Tid < 1 {
				t.Fatalf("X event %q has pid/tid %d/%d", e.Name, e.Pid, e.Tid)
			}
		case "i":
			instant++
			if e.S != "t" {
				t.Fatalf("instant event scope = %q", e.S)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	if complete != 4 || instant != 1 || meta == 0 {
		t.Fatalf("events: %d meta, %d complete, %d instant", meta, complete, instant)
	}
	// An empty tracer still renders a JSON array, not null.
	var empty bytes.Buffer
	if err := New(Options{Seed: 1}).WriteChromeTrace(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), `"traceEvents":[]`) {
		t.Fatalf("empty tracer rendered %s", empty.String())
	}
}

// TestStageBreakdown aggregates spans by (stage, lane) with profile
// attrs winning the lane.
func TestStageBreakdown(t *testing.T) {
	tc := New(Options{Seed: 5})
	populate(tc)
	stats := tc.StageBreakdown()
	if len(stats) != 3 {
		t.Fatalf("breakdown rows = %d, want 3: %+v", len(stats), stats)
	}
	if stats[0].Stage != "analyze.build" || stats[0].Lane != "analyze" {
		t.Fatalf("first row = %+v", stats[0])
	}
	var fetch *StageStat
	for i := range stats {
		if stats[i].Stage == "crawl.fetch" {
			fetch = &stats[i]
		}
	}
	if fetch == nil || fetch.Lane != "Sim1" || fetch.Count != 2 {
		t.Fatalf("crawl.fetch row = %+v", fetch)
	}
	if fetch.TotalUS != 500_000 || fetch.MaxUS != 400_000 || fetch.MeanUS() != 250_000 {
		t.Fatalf("crawl.fetch durations = %+v", fetch)
	}
}

// TestSpanEndMetrics: ending spans publishes per-stage counters and
// histograms into the registry.
func TestSpanEndMetrics(t *testing.T) {
	reg := metrics.New()
	tc := New(Options{Seed: 5, Metrics: reg})
	populate(tc)
	if got := reg.Counter(metrics.Labeled("trace.spans.total", "stage", "crawl.fetch")).Value(); got != 2 {
		t.Fatalf("fetch span counter = %d, want 2", got)
	}
	// Double End must not double-count.
	tr := tc.Trace("page", "site-b|https://b/y")
	s := tr.Span(nil, "crawl.visit", "again", 0)
	s.End(10)
	s.End(20)
	if s.EndUS != 10 {
		t.Fatalf("second End moved EndUS to %d", s.EndUS)
	}
	if got := reg.Counter(metrics.Labeled("trace.spans.total", "stage", "crawl.visit")).Value(); got != 2 {
		t.Fatalf("visit span counter = %d, want 2 (one populate + one here)", got)
	}
	// End clamps to the start when given an earlier timestamp.
	c := tr.Span(nil, "crawl.backoff", "clamp", 100)
	c.End(40)
	if c.DurUS() != 0 {
		t.Fatalf("clamped span duration = %d", c.DurUS())
	}
}

// TestContextPropagation: the tracer and current span ride the context;
// StartSpan attaches children to the context's span.
func TestContextPropagation(t *testing.T) {
	tc := New(Options{Seed: 9})
	ctx := NewContext(context.Background(), tc)
	if TracerFrom(ctx) != tc {
		t.Fatal("tracer lost in context")
	}
	tr := tc.Trace("page", "k")
	root := tr.Span(nil, "crawl.visit", "Old", 0)
	ctx = ContextWithSpan(ctx, root)
	ctx2, child := StartSpan(ctx, "crawl.fetch", "Old#1", 5)
	if child == nil || child.Parent != root.ID {
		t.Fatalf("StartSpan child = %+v", child)
	}
	if SpanFrom(ctx2) != child || SpanFrom(ctx) != root {
		t.Fatal("context span linkage wrong")
	}
	// With no current span, StartSpan is a no-op.
	if _, s := StartSpan(context.Background(), "x", "", 0); s != nil {
		t.Fatal("StartSpan without a parent created a span")
	}
	if TracerFrom(nil) != nil || SpanFrom(nil) != nil {
		t.Fatal("nil context lookups must return nil")
	}
}

// TestLogHandler: records logged with a span context carry trace_id and
// span_id; ParseLevel maps flag spellings.
func TestLogHandler(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "debug", false)
	if err != nil {
		t.Fatal(err)
	}
	tc := New(Options{Seed: 9})
	tr := tc.Trace("page", "k")
	s := tr.Span(nil, "crawl.visit", "Old", 0)
	ctx := ContextWithSpan(context.Background(), s)
	logger.InfoContext(ctx, "visiting", "profile", "Old")
	line := buf.String()
	for _, want := range []string{"msg=visiting", "profile=Old", "trace_id=" + tr.ID.String(), "span_id=" + s.ID.String()} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
	if strings.Contains(line, "time=") {
		t.Errorf("log line carries a timestamp (breaks diffability): %s", line)
	}
	buf.Reset()
	logger.Info("no span here")
	if strings.Contains(buf.String(), "trace_id=") {
		t.Errorf("span-less record gained a trace_id: %s", buf.String())
	}

	// JSON format parses and keeps the IDs.
	buf.Reset()
	jl, err := NewLogger(&buf, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	jl.InfoContext(ctx, "visiting")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON log record does not parse: %v", err)
	}
	if rec["trace_id"] != tr.ID.String() {
		t.Fatalf("JSON record trace_id = %v", rec["trace_id"])
	}

	if _, err := NewLogger(&buf, "loud", false); err == nil {
		t.Fatal("unknown level must error")
	}
	for in, want := range map[string]string{"": "INFO", "warning": "WARN", "Error": "ERROR", "debug": "DEBUG"} {
		lvl, err := ParseLevel(in)
		if err != nil || lvl.String() != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, lvl, err)
		}
	}

	// The discard logger drops everything silently.
	DiscardLogger().Info("dropped")
}
