package trace

import (
	"bytes"
	"testing"
)

// fakeWork records a deterministic two-trace workload on tr. which selects
// a subset: bit 0 enables the "alpha" page, bit 1 the "beta" page — so
// tests can split the same workload across tracers and merge it back.
func fakeWork(tr *Tracer, which int) {
	if which&1 != 0 {
		page := tr.Trace("page", "siteA/alpha")
		root := page.Span(nil, "visit", "Old", 100)
		root.SetAttr("profile", "Old")
		fetch := page.Span(root, "fetch", "1", 110)
		fetch.AddEvent("retry", 120)
		fetch.End(150)
		root.End(200)
	}
	if which&2 != 0 {
		page := tr.Trace("page", "siteB/beta")
		root := page.Span(nil, "visit", "Sim1", 300)
		root.SetAttrInt("requests", 7)
		root.End(450)
	}
}

// renderTrace renders both export formats of a tracer.
func renderTrace(t *testing.T, tr *Tracer) (jsonl, chrome []byte) {
	t.Helper()
	var jl, ch bytes.Buffer
	if err := tr.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&ch); err != nil {
		t.Fatal(err)
	}
	return jl.Bytes(), ch.Bytes()
}

// TestExportImportRoundTrip: a tracer rebuilt from its own export must
// render byte-identical JSONL and Chrome traces — IDs, attrs, events, and
// ordering all survive the wire.
func TestExportImportRoundTrip(t *testing.T) {
	orig := New(Options{Seed: 9, SampleEvery: 1})
	fakeWork(orig, 3)
	wantJL, wantCh := renderTrace(t, orig)

	back := New(Options{Seed: 9, SampleEvery: 1})
	if err := back.Import(orig.Export()); err != nil {
		t.Fatal(err)
	}
	gotJL, gotCh := renderTrace(t, back)
	if !bytes.Equal(gotJL, wantJL) {
		t.Error("JSONL differs after export/import round trip")
	}
	if !bytes.Equal(gotCh, wantCh) {
		t.Error("Chrome trace differs after export/import round trip")
	}
}

// TestImportMergesShards: the same workload recorded whole on one tracer
// and split across two shard tracers must render identically once the
// shard exports are imported into a fresh tracer — the coordinator's merge
// path. Span and trace IDs are pure seeded hashes, so the shard tracers
// mint the very IDs the single tracer would.
func TestImportMergesShards(t *testing.T) {
	single := New(Options{Seed: 9, SampleEvery: 1})
	fakeWork(single, 3)
	wantJL, wantCh := renderTrace(t, single)

	shardA := New(Options{Seed: 9, SampleEvery: 1})
	fakeWork(shardA, 1)
	shardB := New(Options{Seed: 9, SampleEvery: 1})
	fakeWork(shardB, 2)

	merged := New(Options{Seed: 9, SampleEvery: 1})
	for _, shard := range []*Tracer{shardB, shardA} { // arrival order must not matter
		if err := merged.Import(shard.Export()); err != nil {
			t.Fatal(err)
		}
	}
	gotJL, gotCh := renderTrace(t, merged)
	if !bytes.Equal(gotJL, wantJL) {
		t.Error("JSONL differs between whole recording and merged shards")
	}
	if !bytes.Equal(gotCh, wantCh) {
		t.Error("Chrome trace differs between whole recording and merged shards")
	}
}

// TestImportRejectsIDConflict: two partials claiming the same (name, key)
// trace under different IDs come from different seeds — merging them would
// corrupt parent/child links, so the import must refuse.
func TestImportRejectsIDConflict(t *testing.T) {
	a := New(Options{Seed: 1, SampleEvery: 1})
	fakeWork(a, 1)
	b := New(Options{Seed: 2, SampleEvery: 1})
	fakeWork(b, 1)

	merged := New(Options{Seed: 1, SampleEvery: 1})
	if err := merged.Import(a.Export()); err != nil {
		t.Fatal(err)
	}
	if err := merged.Import(b.Export()); err == nil {
		t.Error("import accepted the same trace key under a different ID")
	}
}

// TestImportIntoNilTracer: a nil tracer swallows imports — workers with
// tracing off ship empty trace lists and the coordinator must not care.
func TestImportNilAndEmpty(t *testing.T) {
	var nilTracer *Tracer
	if err := nilTracer.Import([]TraceData{{ID: 1, Name: "page", Key: "k"}}); err != nil {
		t.Errorf("nil tracer import: %v", err)
	}
	if data := nilTracer.Export(); len(data) != 0 {
		t.Error("nil tracer exported traces")
	}
	live := New(Options{Seed: 3, SampleEvery: 1})
	if err := live.Import(nil); err != nil {
		t.Errorf("empty import: %v", err)
	}
}
