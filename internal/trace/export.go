package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// WriteFiles renders the tracer to disk: chromePath gets the Chrome
// trace-event JSON, jsonlPath the span-per-line export. An empty path
// skips that format. This is the shared tail of every cmd's -trace /
// -trace-jsonl handling.
func (t *Tracer) WriteFiles(chromePath, jsonlPath string) error {
	write := func(path string, render func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return fmt.Errorf("render %s: %w", path, err)
		}
		return f.Close()
	}
	if err := write(chromePath, t.WriteChromeTrace); err != nil {
		return err
	}
	return write(jsonlPath, t.WriteJSONL)
}

// Traces snapshots the recorded traces sorted by (Name, Key) — the
// canonical export order, independent of creation order and therefore of
// worker scheduling.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Trace, 0, len(t.byKey))
	for _, tr := range t.byKey {
		out = append(out, tr)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TraceCount returns how many traces the tracer retains.
func (t *Tracer) TraceCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byKey)
}

// SpanCount returns the total spans across all retained traces.
func (t *Tracer) SpanCount() int {
	total := 0
	for _, tr := range t.Traces() {
		total += tr.SpanCount()
	}
	return total
}

// sortedSpans snapshots a trace's spans in canonical order: simulated
// start time, then name, then disambiguation key, then ID — a total order
// for any span set the instrumentation produces, so exports are
// byte-identical no matter which goroutine appended first.
func (tr *Trace) sortedSpans() []*Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	spans := make([]*Span, len(tr.spans))
	copy(spans, tr.spans)
	tr.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.ID < b.ID
	})
	return spans
}

// eventJSON is the JSONL/Chrome rendering of a span event.
type eventJSON struct {
	Name  string            `json:"name"`
	AtUS  int64             `json:"at_us"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// spanJSON is one JSONL record: a single span with its trace coordinates.
type spanJSON struct {
	Trace   string            `json:"trace"`
	Key     string            `json:"key"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []eventJSON       `json:"events,omitempty"`
}

// attrMap renders attrs as a map; encoding/json sorts map keys, keeping
// the serialization deterministic. Later values win on duplicate keys.
func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// WriteJSONL streams every span as one JSON object per line, traces in
// (Name, Key) order and spans in canonical order — the golden-testable
// face of the tracer: same seed in, same bytes out, at any worker count.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tr := range t.Traces() {
		traceID := tr.ID.String()
		for _, s := range tr.sortedSpans() {
			rec := spanJSON{
				Trace:   traceID,
				Key:     tr.Key,
				Span:    s.ID.String(),
				Name:    s.Name,
				StartUS: s.StartUS,
				DurUS:   s.DurUS(),
				Attrs:   attrMap(s.Attrs),
			}
			if s.Parent != 0 {
				rec.Parent = s.Parent.String()
			}
			for _, e := range s.Events {
				rec.Events = append(rec.Events, eventJSON{Name: e.Name, AtUS: e.AtUS, Attrs: attrMap(e.Attrs)})
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry in the Chrome trace-event JSON array
// (the format chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the top-level trace-event JSON object.
type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// spanLane maps a span to its display lane (Chrome "thread"): the
// profile that produced it when tagged, otherwise the stage family —
// the first dot-segment of the span name ("crawl", "analyze",
// "treediff").
func spanLane(s *Span) string {
	if p := s.attr("profile"); p != "" {
		return p
	}
	if i := strings.IndexByte(s.Name, '.'); i > 0 {
		return s.Name[:i]
	}
	return s.Name
}

// WriteChromeTrace renders the recorded spans as Chrome trace-event JSON:
// one "process" per trace (named after the page key), one "thread" lane
// per profile or stage family, "X" complete events for spans, and "i"
// instant events for span events. Load the file in chrome://tracing or
// https://ui.perfetto.dev. Output is deterministic for a fixed seed.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	traces := t.Traces()
	// Start non-nil so an empty tracer still renders "traceEvents": []
	// (a JSON array, which is what trace viewers and validators expect).
	events := []chromeEvent{}
	for pi, tr := range traces {
		pid := pi + 1
		spans := tr.sortedSpans()
		// Stable lane numbering per trace: lanes sorted by name.
		laneSet := map[string]bool{}
		for _, s := range spans {
			laneSet[spanLane(s)] = true
		}
		lanes := make([]string, 0, len(laneSet))
		for l := range laneSet {
			lanes = append(lanes, l)
		}
		sort.Strings(lanes)
		laneTid := make(map[string]int, len(lanes))
		for i, l := range lanes {
			laneTid[l] = i + 1
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]string{"name": tr.Name + " " + tr.Key},
		})
		for _, l := range lanes {
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: laneTid[l],
				Args: map[string]string{"name": l},
			})
		}
		traceID := tr.ID.String()
		for _, s := range spans {
			tid := laneTid[spanLane(s)]
			args := attrMap(s.Attrs)
			if args == nil {
				args = map[string]string{}
			}
			args["trace_id"] = traceID
			args["span_id"] = s.ID.String()
			if s.Parent != 0 {
				args["parent_id"] = s.Parent.String()
			}
			dur := s.DurUS()
			events = append(events, chromeEvent{
				Name: s.Name, Ph: "X", Ts: s.StartUS, Dur: &dur, Pid: pid, Tid: tid, Args: args,
			})
			for _, e := range s.Events {
				events = append(events, chromeEvent{
					Name: e.Name, Ph: "i", Ts: e.AtUS, Pid: pid, Tid: tid, S: "t",
					Args: attrMap(e.Attrs),
				})
			}
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(chromeFile{DisplayTimeUnit: "ms", TraceEvents: events}); err != nil {
		return err
	}
	return bw.Flush()
}

// StageStat is one row of the per-stage/per-lane breakdown: how many
// spans a stage recorded on a lane and their simulated-time cost.
type StageStat struct {
	Stage   string
	Lane    string
	Count   int
	TotalUS int64
	MaxUS   int64
}

// MeanUS returns the mean simulated span duration in microseconds.
func (s StageStat) MeanUS() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.TotalUS) / float64(s.Count)
}

// StageBreakdown aggregates all recorded spans by (stage name, lane),
// sorted by stage then lane — the table face of the trace data.
func (t *Tracer) StageBreakdown() []StageStat {
	if t == nil {
		return nil
	}
	type key struct{ stage, lane string }
	agg := map[key]*StageStat{}
	for _, tr := range t.Traces() {
		for _, s := range tr.sortedSpans() {
			k := key{s.Name, spanLane(s)}
			st := agg[k]
			if st == nil {
				st = &StageStat{Stage: k.stage, Lane: k.lane}
				agg[k] = st
			}
			st.Count++
			d := s.DurUS()
			st.TotalUS += d
			if d > st.MaxUS {
				st.MaxUS = d
			}
		}
	}
	out := make([]StageStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Lane < out[j].Lane
	})
	return out
}
