package trace

// This file is the tracer's wire codec for the distributed shard-and-merge
// pipeline. The JSONL and Chrome exports are lossy views (they drop the
// trace name and the span disambiguation key, both of which feed the
// canonical sort), so shard workers export full-fidelity TraceData records
// instead, and the coordinator imports them into one tracer. Traces are
// page-granular and a shard plan partitions pages, so shard tracers are
// disjoint; import + canonical export sorting make the merged JSONL and
// Chrome renderings byte-identical to a single-process run.

import (
	"fmt"
	"sort"
)

// SpanData is the wire form of one span, carrying every field the
// canonical exports read — including the sibling-disambiguation key the
// JSONL rendering omits.
type SpanData struct {
	ID      uint64  `json:"id"`
	Parent  uint64  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	Key     string  `json:"key,omitempty"`
	StartUS int64   `json:"start_us"`
	EndUS   int64   `json:"end_us"`
	Ended   bool    `json:"ended,omitempty"`
	Attrs   []Attr  `json:"attrs,omitempty"`
	Events  []Event `json:"events,omitempty"`
}

// TraceData is the wire form of one trace with its spans in canonical
// order.
type TraceData struct {
	ID    uint64     `json:"id"`
	Name  string     `json:"name"`
	Key   string     `json:"key"`
	Spans []SpanData `json:"spans,omitempty"`
}

// Export snapshots the tracer as wire records: traces in (Name, Key)
// order, spans in the canonical export order.
func (t *Tracer) Export() []TraceData {
	if t == nil {
		return nil
	}
	traces := t.Traces()
	out := make([]TraceData, 0, len(traces))
	for _, tr := range traces {
		td := TraceData{ID: uint64(tr.ID), Name: tr.Name, Key: tr.Key}
		for _, s := range tr.sortedSpans() {
			td.Spans = append(td.Spans, SpanData{
				ID:      uint64(s.ID),
				Parent:  uint64(s.Parent),
				Name:    s.Name,
				Key:     s.key,
				StartUS: s.StartUS,
				EndUS:   s.EndUS,
				Ended:   s.ended,
				Attrs:   s.Attrs,
				Events:  s.Events,
			})
		}
		out = append(out, td)
	}
	return out
}

// Import adds exported traces to the tracer, preserving the recorded IDs
// verbatim (no re-derivation, so the import is faithful regardless of the
// receiving tracer's seed). Spans of a trace already present are appended
// to it — the sorted exports re-canonicalize the order — but two traces
// claiming the same (name, key) with different IDs are an error: that is
// two different experiments' data.
func (t *Tracer) Import(data []TraceData) error {
	if t == nil || len(data) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, td := range data {
		mapKey := td.Name + "\x00" + td.Key
		tr := t.byKey[mapKey]
		if tr == nil {
			tr = &Trace{tracer: t, ID: TraceID(td.ID), Name: td.Name, Key: td.Key}
			t.byKey[mapKey] = tr
		} else if uint64(tr.ID) != td.ID {
			return fmt.Errorf("trace: import of %q/%q: trace ID %016x conflicts with recorded %s", td.Name, td.Key, td.ID, tr.ID)
		}
		for _, sd := range td.Spans {
			tr.spans = append(tr.spans, &Span{
				trace:   tr,
				ID:      SpanID(sd.ID),
				Parent:  SpanID(sd.Parent),
				Name:    sd.Name,
				key:     sd.Key,
				StartUS: sd.StartUS,
				EndUS:   sd.EndUS,
				ended:   sd.Ended,
				Attrs:   sd.Attrs,
				Events:  sd.Events,
			})
		}
	}
	return nil
}

// SortTraceData orders wire records canonically (Name, Key) — the helper
// a coordinator uses before comparing or hashing partial trace sets.
func SortTraceData(data []TraceData) {
	sort.Slice(data, func(i, j int) bool {
		if data[i].Name != data[j].Name {
			return data[i].Name < data[j].Name
		}
		return data[i].Key < data[j].Key
	})
}
