// Package trace is the span-tracing layer of the pipeline: one trace per
// page visit, one span per stage the page passes through — fetch attempts,
// retry backoffs, tree build, vetting, and the treediff comparison stages.
// It exists because the paper's five semi-parallel profile crawls make it
// hard to tell *where* divergence and latency come from, and multi-vantage
// work ("The Blind Men and the Internet") shows that uninstrumented setup
// differences silently bias results.
//
// Unlike wall-clock tracers, everything here is deterministic: trace and
// span IDs are seeded hashes of stable names (no global counters whose
// order depends on scheduling), and timestamps are simulated microseconds
// supplied by the instrumentation sites — the crawler's simulated render
// and backoff times, the analysis' work-proportional cost model. The same
// seed therefore produces byte-identical exports (JSONL and Chrome
// trace-event JSON) for every worker count, which is what lets the trace
// artifact sit inside the determinism golden suite.
//
// Sampling is head-based: the keep/drop decision is a pure function of
// (seed, trace key), so a 1-in-N sample selects the same pages on every
// run and on every concurrently-tracing worker.
//
// All types tolerate nil receivers: a nil *Tracer hands out nil *Trace,
// which hands out nil *Span, whose methods are no-ops — instrumented code
// never branches on "is tracing enabled".
package trace

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"

	"webmeasure/internal/metrics"
)

// TraceID identifies one page's journey through the pipeline.
type TraceID uint64

// SpanID identifies one operation within a trace.
type SpanID uint64

// String renders the ID as 16 hex digits (the OpenTelemetry convention,
// halved to 64 bits).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the ID as 16 hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value string
}

// Event is a point-in-time annotation within a span (e.g. a retry
// decision), at a simulated timestamp.
type Event struct {
	Name  string
	AtUS  int64
	Attrs []Attr
}

// hash64 mixes the parts with FNV-1a — the same derivation scheme webgen
// uses, duplicated here so the trace layer stays dependency-free.
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// mix folds two 64-bit values with the SplitMix64 finalizer for avalanche.
func mix(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Options parameterizes New.
type Options struct {
	// Seed pins the trace/span ID derivation and the sampling decision;
	// use the crawl's master seed so traces line up with the dataset.
	Seed int64
	// SampleEvery keeps one of every N traces, decided per trace key
	// (head-based sampling). 0 or 1 keeps every trace.
	SampleEvery int
	// MaxTraces is a safety valve bounding retained traces (0 =
	// unlimited). Traces beyond the cap are dropped at creation and
	// counted; which traces are dropped depends on scheduling, so leave
	// this unset when byte-identical exports matter.
	MaxTraces int
	// Metrics, if non-nil, receives per-stage span counters and simulated
	// latency histograms (trace.spans.total{stage=...},
	// trace.span_us{stage=...}) as spans end — the Prometheus face of the
	// stage breakdown.
	Metrics *metrics.Registry
}

// Tracer collects the traces of one pipeline run. Create with New; a nil
// Tracer is permanently disabled and hands out nil traces.
type Tracer struct {
	seed        uint64
	sampleEvery int
	maxTraces   int
	reg         *metrics.Registry

	mu      sync.Mutex
	byKey   map[string]*Trace
	dropped int64
}

// New creates a tracer.
func New(opts Options) *Tracer {
	sample := opts.SampleEvery
	if sample < 1 {
		sample = 1
	}
	return &Tracer{
		seed:        uint64(opts.Seed),
		sampleEvery: sample,
		maxTraces:   opts.MaxTraces,
		reg:         opts.Metrics,
		byKey:       make(map[string]*Trace),
	}
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil }

// Scratch returns a fresh empty tracer that makes the same sampling and
// ID decisions as t — same seed and sampling rate, so Trace/Span IDs and
// keep/drop outcomes are identical pure functions — but records into its
// own buffers. The site-parallel crawler hands each in-flight site a
// scratch tracer and Imports the exports in site order, which keeps the
// merged tracer byte-identical to a sequential run's. The scratch shares
// t's metrics registry (span counters are atomic and order-independent)
// but not the MaxTraces valve: the valve's drop choice depends on
// scheduling, so it only makes sense on the tracer that sees the whole
// run. A nil tracer hands out a nil scratch.
func (t *Tracer) Scratch() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{
		seed:        t.seed,
		sampleEvery: t.sampleEvery,
		reg:         t.reg,
		byKey:       make(map[string]*Trace),
	}
}

// SampleEvery returns the head-sampling rate (1 = every trace).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return t.sampleEvery
}

// Dropped returns how many traces the MaxTraces valve discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// sampled is the head-based keep/drop decision: a pure function of
// (seed, name, key), identical on every worker and every run.
func (t *Tracer) sampled(name, key string) bool {
	if t.sampleEvery <= 1 {
		return true
	}
	return mix(t.seed, hash64("trace.sample", name, key))%uint64(t.sampleEvery) == 0
}

// Trace returns the trace for (name, key), creating it on first use —
// the crawl opens a page's trace and the analysis later re-opens the same
// one by key, so a page's whole journey lands in a single trace. Returns
// nil when the tracer is nil, the key is sampled out, or the MaxTraces
// valve is full.
func (t *Tracer) Trace(name, key string) *Trace {
	if t == nil {
		return nil
	}
	if !t.sampled(name, key) {
		return nil
	}
	mapKey := name + "\x00" + key
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.byKey[mapKey]; tr != nil {
		return tr
	}
	if t.maxTraces > 0 && len(t.byKey) >= t.maxTraces {
		t.dropped++
		return nil
	}
	id := TraceID(mix(t.seed, hash64("trace", name, key)))
	if id == 0 {
		id = 1
	}
	tr := &Trace{tracer: t, ID: id, Name: name, Key: key}
	t.byKey[mapKey] = tr
	return tr
}

// Trace is one page's (or one job's) span collection. Spans may be added
// concurrently from multiple goroutines; each individual span must be
// mutated by its owning goroutine only.
type Trace struct {
	tracer *Tracer
	ID     TraceID
	Name   string
	Key    string

	mu    sync.Mutex
	spans []*Span
}

// Span starts a span on the trace. parent may be nil (a trace-root span).
// key disambiguates siblings that share a name — the profile of a visit
// span, the attempt number of a fetch span — so span IDs stay collision-
// free and deterministic without any global counter. startUS is the
// simulated start time in microseconds.
func (tr *Trace) Span(parent *Span, name, key string, startUS int64) *Span {
	if tr == nil {
		return nil
	}
	var parentID SpanID
	parentBits := uint64(tr.ID)
	if parent != nil {
		parentID = parent.ID
		parentBits = uint64(parent.ID)
	}
	id := SpanID(mix(uint64(tr.ID)^parentBits, hash64("span", name, key)))
	if id == 0 {
		id = 1
	}
	s := &Span{
		trace:   tr,
		ID:      id,
		Parent:  parentID,
		Name:    name,
		key:     key,
		StartUS: startUS,
		EndUS:   startUS,
	}
	tr.mu.Lock()
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	return s
}

// SpanCount returns the number of spans recorded so far.
func (tr *Trace) SpanCount() int {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.spans)
}

// Span is one operation in a trace. The zero SpanID parent marks a
// trace-root span. A nil Span ignores every method.
type Span struct {
	trace  *Trace
	ID     SpanID
	Parent SpanID
	Name   string
	key    string

	StartUS int64
	EndUS   int64
	Attrs   []Attr
	Events  []Event
	ended   bool
}

// Trace returns the owning trace (nil for a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// TraceID returns the owning trace's ID (0 for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil || s.trace == nil {
		return 0
	}
	return s.trace.ID
}

// SetAttr annotates the span; returns the span for chaining.
func (s *Span) SetAttr(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	return s
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int) *Span {
	return s.SetAttr(key, fmt.Sprintf("%d", value))
}

// SetAttrFloat annotates the span with a float value rendered shortest-
// exact, so attribute bytes stay deterministic across platforms (the
// scaler's p95 inputs ride on spans this way).
func (s *Span) SetAttrFloat(key string, value float64) *Span {
	return s.SetAttr(key, strconv.FormatFloat(value, 'g', -1, 64))
}

// AddEvent records a point-in-time annotation at a simulated timestamp.
func (s *Span) AddEvent(name string, atUS int64, attrs ...Attr) {
	if s == nil {
		return
	}
	s.Events = append(s.Events, Event{Name: name, AtUS: atUS, Attrs: attrs})
}

// End closes the span at a simulated timestamp (clamped to its start) and
// publishes the per-stage metrics. A second End is a no-op.
func (s *Span) End(endUS int64) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if endUS < s.StartUS {
		endUS = s.StartUS
	}
	s.EndUS = endUS
	if s.trace != nil && s.trace.tracer != nil && s.trace.tracer.reg != nil {
		reg := s.trace.tracer.reg
		reg.Counter(metrics.Labeled("trace.spans.total", "stage", s.Name)).Inc()
		reg.Histogram(metrics.Labeled("trace.span_us", "stage", s.Name)).Observe(float64(endUS - s.StartUS))
	}
}

// DurUS returns the span's simulated duration in microseconds.
func (s *Span) DurUS() int64 {
	if s == nil {
		return 0
	}
	return s.EndUS - s.StartUS
}

// attr returns the value of a span attribute, "" when absent.
func (s *Span) attr(key string) string {
	if s == nil {
		return ""
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Context propagation: the tracer rides the context from the cmds through
// the facade into the crawler and analysis; the current span rides it
// into nested stages so children attach to the right parent.

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// NewContext returns a context carrying the tracer.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom extracts the context's tracer (nil when absent).
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// ContextWithSpan returns a context carrying the span as the current one.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, s)
}

// SpanFrom extracts the context's current span (nil when absent).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns a
// context carrying the child. With no current span (tracing off or the
// trace sampled out) it returns the context unchanged and a nil span.
func StartSpan(ctx context.Context, name, key string, startUS int64) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.trace.Span(parent, name, key, startUS)
	return ContextWithSpan(ctx, s), s
}
