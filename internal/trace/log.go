package trace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// spanHandler decorates an slog.Handler so every record logged with a
// context carrying a current span also carries trace_id/span_id — the
// glue that lets `grep trace_id=<id>` pull one page's full story out of
// an interleaved five-profile crawl log.
type spanHandler struct {
	inner slog.Handler
}

// WrapHandler adds trace/span ID enrichment to any slog handler.
func WrapHandler(h slog.Handler) slog.Handler { return &spanHandler{inner: h} }

func (h *spanHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *spanHandler) Handle(ctx context.Context, rec slog.Record) error {
	if s := SpanFrom(ctx); s != nil {
		rec.AddAttrs(
			slog.String("trace_id", s.TraceID().String()),
			slog.String("span_id", s.ID.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h *spanHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &spanHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *spanHandler) WithGroup(name string) slog.Handler {
	return &spanHandler{inner: h.inner.WithGroup(name)}
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds the pipeline's structured logger: text or JSON
// records at the given level, each enriched with trace_id/span_id when
// the logging context carries a span. Timestamps are suppressed so log
// output stays diffable across runs (the pipeline's clock is simulated
// anyway).
func NewLogger(w io.Writer, level string, jsonFormat bool) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{
		Level: lvl,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(WrapHandler(h)), nil
}

// discardHandler drops everything (kept local; slog.DiscardHandler needs
// a newer stdlib than the module's floor).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DiscardLogger returns a logger that drops every record — the default
// for library components whose caller didn't wire one.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
