package service

import (
	"encoding/json"
	"fmt"
	"time"

	"webmeasure"
	"webmeasure/internal/browser"
	"webmeasure/internal/dataset"
	"webmeasure/internal/faults"
	"webmeasure/internal/metrics"
)

// JobSpec is the wire form of a measurement job: which universe to
// generate (seed/epoch), how much of it to crawl (sites/pages), with
// which browser profiles, and how to analyze it. The zero value of every
// field means "the experiment default", mirroring webmeasure.Config.
type JobSpec struct {
	Seed         int64    `json:"seed,omitempty"`
	Sites        int      `json:"sites,omitempty"`
	TrancoSize   int      `json:"tranco_size,omitempty"`
	PagesPerSite int      `json:"pages_per_site,omitempty"`
	Instances    int      `json:"instances,omitempty"`
	Epoch        int      `json:"epoch,omitempty"`
	Stateful     bool     `json:"stateful,omitempty"`
	Profiles     []string `json:"profiles,omitempty"`
	// FaultProfile selects the deterministic fault-injection profile
	// ("off", "light", "heavy"; empty = off). Part of the cache key: the
	// injected faults change the dataset, so each profile is its own
	// experiment.
	FaultProfile string `json:"fault_profile,omitempty"`
	// Workers bounds the analysis worker pool. It is deliberately NOT
	// part of the cache key: the analysis is byte-identical for every
	// worker count (the repo's determinism golden test), so results may
	// be shared across jobs that differ only here.
	Workers int `json:"workers,omitempty"`
	// SiteWorkers bounds the crawl's site-level worker pool. Like
	// Workers it is deliberately NOT part of the cache key: the crawl's
	// output is byte-identical for every site-worker count (the reorder
	// sequencer emits sites in list order), so results may be shared
	// across jobs that differ only here.
	SiteWorkers int `json:"site_workers,omitempty"`
	// TraceSample enables span tracing for the job: 0 runs untraced, 1
	// traces every page, N>1 head-samples one page in N. It IS part of
	// the cache key — a traced job carries a trace artifact an untraced
	// one lacks, so they are distinct results even though the dataset
	// bytes agree.
	TraceSample int `json:"trace_sample,omitempty"`
	// Shards splits the job's page-key space for distributed
	// shard-and-merge analysis (0 or 1 = a whole-experiment job). A job
	// with Shards > 1 and Shard 0 is a coordinator: it fans one shard job
	// per slice out to the configured shard workers (or runs them
	// in-process) and merges the partials into full artifacts.
	Shards int `json:"shards,omitempty"`
	// Shard selects one slice (1-based, ≤ Shards): the job runs only that
	// slice and publishes a partial.json artifact instead of the full
	// report. 0 with Shards > 1 means "coordinate all shards".
	Shard int `json:"shard,omitempty"`
	// ShardSeed seeds the shard plan's page-key hash (0 = Seed). Part of
	// the cache key together with Shards and Shard: the same slice under a
	// different plan is a different result.
	ShardSeed int64 `json:"shard_seed,omitempty"`
	// DatasetFormat selects the job's primary dataset artifact encoding:
	// "jsonl" (the default, canonicalized to empty) or "col" (the compact
	// columnar format, published as dataset.col). It IS part of the cache
	// key — like TraceSample, a columnar job advertises an artifact a
	// JSONL job lacks — though the visits underneath are identical.
	DatasetFormat string `json:"dataset_format,omitempty"`
}

// normalize fills every defaulted field with its concrete value (the same
// rules webmeasure.Config applies) and expands an empty profile set to
// the explicit five, so two specs that mean the same experiment become
// the same canonical value. It validates against limits and returns the
// normalized copy.
func (s JobSpec) normalize(limits Limits) (JobSpec, error) {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Sites <= 0 {
		s.Sites = 100
	}
	if s.TrancoSize <= 0 {
		s.TrancoSize = s.Sites * 10
	}
	if s.TrancoSize < s.Sites {
		s.TrancoSize = s.Sites
	}
	if s.PagesPerSite <= 0 {
		s.PagesPerSite = 10
	}
	if s.Instances <= 0 {
		s.Instances = 15
	}
	if s.Workers < 0 {
		s.Workers = 0
	}
	if s.SiteWorkers < 0 {
		s.SiteWorkers = 0
	}
	if s.TraceSample < 0 {
		s.TraceSample = 0
	}
	if _, err := faults.ByName(s.FaultProfile); err != nil {
		return s, err
	}
	if s.FaultProfile == "off" {
		// "off" and "" mean the same experiment; canonicalize so they
		// share a cache key.
		s.FaultProfile = ""
	}
	switch s.DatasetFormat {
	case "", dataset.FormatCol:
	case dataset.FormatJSONL:
		// "jsonl" and "" mean the same artifact set; canonicalize so they
		// share a cache key.
		s.DatasetFormat = ""
	default:
		return s, fmt.Errorf("unknown dataset_format %q (want jsonl or col)", s.DatasetFormat)
	}
	if s.Sites > limits.MaxSites {
		return s, fmt.Errorf("sites %d exceeds the server limit %d", s.Sites, limits.MaxSites)
	}
	if s.PagesPerSite > limits.MaxPagesPerSite {
		return s, fmt.Errorf("pages_per_site %d exceeds the server limit %d", s.PagesPerSite, limits.MaxPagesPerSite)
	}
	if s.Epoch < 0 {
		return s, fmt.Errorf("epoch must be non-negative")
	}
	if s.Shards <= 1 {
		if s.Shard > 0 {
			return s, fmt.Errorf("shard %d requires shards > 1", s.Shard)
		}
		// Unsharded jobs canonicalize all shard fields to zero so every
		// spelling of "the whole experiment" shares a cache key.
		s.Shards, s.Shard, s.ShardSeed = 0, 0, 0
	} else {
		if s.Shards > limits.MaxShards {
			return s, fmt.Errorf("shards %d exceeds the server limit %d", s.Shards, limits.MaxShards)
		}
		if s.Shard < 0 || s.Shard > s.Shards {
			return s, fmt.Errorf("shard %d out of range for %d shards", s.Shard, s.Shards)
		}
		if s.ShardSeed == 0 {
			s.ShardSeed = s.Seed
		}
	}
	all := browser.DefaultProfiles()
	if len(s.Profiles) == 0 {
		names := make([]string, len(all))
		for i, p := range all {
			names[i] = p.Name
		}
		s.Profiles = names
		return s, nil
	}
	// Validate and re-order to the canonical Table 1 order, dropping
	// duplicates, so every spelling of the same set shares a cache key.
	want := make(map[string]bool, len(s.Profiles))
	for _, n := range s.Profiles {
		found := false
		for _, p := range all {
			if p.Name == n {
				found = true
				break
			}
		}
		if !found {
			return s, fmt.Errorf("unknown profile %q", n)
		}
		want[n] = true
	}
	ordered := make([]string, 0, len(want))
	for _, p := range all {
		if want[p.Name] {
			ordered = append(ordered, p.Name)
		}
	}
	s.Profiles = ordered
	return s, nil
}

// cacheKey is the canonical identity of the measurement a spec describes:
// the JSON encoding of the normalized spec with Workers and SiteWorkers
// zeroed (neither pool size changes the output bytes). Two submissions
// with equal keys are the same deterministic experiment.
func (s JobSpec) cacheKey() string {
	s.Workers = 0
	s.SiteWorkers = 0
	b, err := json.Marshal(s)
	if err != nil {
		// JobSpec is a plain struct of scalars and strings; Marshal
		// cannot fail on it.
		panic(fmt.Sprintf("service: marshal spec: %v", err))
	}
	return string(b)
}

// Canonical normalizes the spec against limits and returns the
// normalized copy with its cache key. This is the exported face of the
// service's spec identity — the loadgen harness uses it so its cache-hit
// modeling agrees byte-for-byte with the server's, and the fuzz suite
// pins that the key is invariant under field reordering and spelling
// variants of the same experiment.
func (s JobSpec) Canonical(limits Limits) (JobSpec, string, error) {
	norm, err := s.normalize(limits)
	if err != nil {
		return JobSpec{}, "", err
	}
	return norm, norm.cacheKey(), nil
}

// config maps the spec onto the facade config, attaching the server's
// shared metrics registry.
func (s JobSpec) config(reg *metrics.Registry) webmeasure.Config {
	shardIndex := 0
	if s.Shard > 0 {
		shardIndex = s.Shard - 1
	}
	return webmeasure.Config{
		Seed:         s.Seed,
		Sites:        s.Sites,
		TrancoSize:   s.TrancoSize,
		PagesPerSite: s.PagesPerSite,
		Instances:    s.Instances,
		Epoch:        s.Epoch,
		Stateful:     s.Stateful,
		Profiles:     s.Profiles,
		FaultProfile: s.FaultProfile,
		Workers:      s.Workers,
		SiteWorkers:  s.SiteWorkers,
		Shards:       s.Shards,
		ShardIndex:   shardIndex,
		ShardSeed:    s.ShardSeed,
		Metrics:      reg,
	}
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether the state can no longer change.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// result holds a finished job's rendered artifacts. The text artifacts
// are rendered once and held as bytes (a cache hit serves the exact same
// bytes); the dataset stays structured so downloads can stream with
// periodic flushes. The trace fields are nil/zero for untraced jobs.
type result struct {
	report  []byte
	json    []byte
	csv     []byte
	dataset *dataset.Dataset
	summary webmeasure.Summary

	traceChrome []byte // Chrome trace-event JSON (nil = job ran untraced)
	traceJSONL  []byte // one span per line, canonical order
	traceCount  int
	spanCount   int

	// partial is the encoded core.Partial of a shard job (nil for whole
	// and coordinator jobs, whose artifacts are the rendered text above).
	partial []byte
}

// Job is one submitted measurement. All mutable fields are guarded by the
// owning Server's mutex; Done is closed exactly once when the job reaches
// a terminal state.
type Job struct {
	ID   string
	Spec JobSpec

	key      string
	state    State
	err      string
	cacheHit bool

	submitted time.Time
	started   time.Time
	finished  time.Time

	cancel func() // non-nil while running
	res    *result

	startedCh chan struct{}
	done      chan struct{}
}

// Done returns a channel that closes when the job reaches a terminal
// state (done, failed, or canceled).
func (j *Job) Done() <-chan struct{} { return j.done }

// Started returns a channel that closes when the job leaves the queue —
// either because a worker picked it up or because it resolved without
// running (cache hit, cancellation, shutdown). Tests synchronize on it
// instead of polling.
func (j *Job) Started() <-chan struct{} { return j.startedCh }

// markStarted closes the Started channel once. Callers hold the server
// mutex, so the check-then-close is race-free.
func (j *Job) markStarted() {
	select {
	case <-j.startedCh:
	default:
		close(j.startedCh)
	}
}

// jobJSON is the API projection of a Job.
type jobJSON struct {
	ID          string              `json:"id"`
	State       State               `json:"state"`
	Spec        JobSpec             `json:"spec"`
	CacheHit    bool                `json:"cache_hit"`
	Error       string              `json:"error,omitempty"`
	SubmittedAt time.Time           `json:"submitted_at"`
	StartedAt   *time.Time          `json:"started_at,omitempty"`
	FinishedAt  *time.Time          `json:"finished_at,omitempty"`
	DurationMS  float64             `json:"duration_ms,omitempty"`
	Summary     *webmeasure.Summary `json:"summary,omitempty"`
	Artifacts   map[string]string   `json:"artifacts,omitempty"`
	TraceCount  int                 `json:"trace_count,omitempty"`
	SpanCount   int                 `json:"span_count,omitempty"`
}

// view renders the job for the API. Callers must hold the server mutex.
func (j *Job) view() jobJSON {
	v := jobJSON{
		ID:          j.ID,
		State:       j.state,
		Spec:        j.Spec,
		CacheHit:    j.cacheHit,
		Error:       j.err,
		SubmittedAt: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
		if !j.started.IsZero() {
			v.DurationMS = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
		}
	}
	if j.state == StateDone && j.res != nil {
		s := j.res.summary
		v.Summary = &s
		base := "/v1/jobs/" + j.ID + "/"
		v.Artifacts = map[string]string{}
		if j.res.report != nil {
			v.Artifacts["report"] = base + "report"
			v.Artifacts["json"] = base + "result.json"
			v.Artifacts["csv"] = base + "result.csv"
		}
		if j.res.dataset != nil {
			v.Artifacts["dataset"] = base + "dataset.jsonl"
			if j.Spec.DatasetFormat == dataset.FormatCol {
				v.Artifacts["dataset_col"] = base + "dataset.col"
			}
		}
		if j.res.partial != nil {
			v.Artifacts["partial"] = base + "partial.json"
		}
		if j.res.traceChrome != nil {
			v.Artifacts["trace"] = base + "trace.json"
			v.Artifacts["trace_jsonl"] = base + "trace.jsonl"
			v.TraceCount = j.res.traceCount
			v.SpanCount = j.res.spanCount
		}
	}
	return v
}
