package service

// Monitor mode: the recurring-measurement loop that turns the job server
// into a longitudinal monitoring daemon. Each tick runs one epoch of the
// configured experiment (the deterministic seeded universe advanced by
// webgen's epoch churn), snapshots the analysis into a drift baseline,
// persists it to the state directory, diffs it against the previous
// epoch and against a pinned reference baseline, feeds the sequential
// delta through the alert rule engine, and rewrites the derived
// artifacts (alerts.jsonl, drift.csv, drift-report.txt).
//
// Everything an epoch emits is a pure function of (spec, epoch) plus the
// baselines before it, so a monitor run is byte-reproducible: two
// servers given the same MonitorConfig write identical state
// directories, and a restarted server resumes from the persisted
// baselines without re-crawling finished epochs.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"webmeasure"
	"webmeasure/internal/drift"
	"webmeasure/internal/report"
)

// MonitorConfig parameterizes monitor mode.
type MonitorConfig struct {
	// Spec is the experiment every epoch reruns; its Epoch field is
	// overridden per tick. It is validated against the server limits like
	// a submitted job.
	Spec JobSpec
	// Epochs is how many epochs to run (required, > 0).
	Epochs int
	// StartEpoch is the first epoch (default 0, the base snapshot).
	StartEpoch int
	// Interval is the pause between epochs; 0 runs them back to back.
	// The schedule only affects timing, never artifact bytes.
	Interval time.Duration
	// StateDir receives baselines, deltas, alerts.jsonl, drift.csv, and
	// drift-report.txt (required; created if missing).
	StateDir string
	// Rules is the alert rule set (nil = drift.DefaultRules()).
	Rules []drift.Rule
	// PinEpoch selects the pinned reference baseline every epoch is
	// additionally diffed against; negative pins StartEpoch.
	PinEpoch int
}

// withDefaults normalizes the optional fields.
func (mc MonitorConfig) withDefaults() MonitorConfig {
	if mc.StartEpoch < 0 {
		mc.StartEpoch = 0
	}
	if mc.PinEpoch < 0 {
		mc.PinEpoch = mc.StartEpoch
	}
	if mc.Rules == nil {
		mc.Rules = drift.DefaultRules()
	}
	return mc
}

// MonitorStatus is the monitor's point-in-time view, served by
// /debug/drift and embedded in /healthz.
type MonitorStatus struct {
	Enabled       bool   `json:"enabled"`
	StateDir      string `json:"state_dir,omitempty"`
	EpochsPlanned int    `json:"epochs_planned,omitempty"`
	EpochsDone    int    `json:"epochs_done"`
	// CurrentEpoch is the epoch measuring right now (-1 when idle).
	CurrentEpoch int `json:"current_epoch"`
	// LastEpoch is the newest completed epoch (-1 before the first).
	LastEpoch   int    `json:"last_epoch"`
	PinEpoch    int    `json:"pin_epoch,omitempty"`
	AlertsTotal int    `json:"alerts_total"`
	Firing      int    `json:"firing"`
	Done        bool   `json:"done"`
	LastError   string `json:"last_error,omitempty"`
}

// monitorState is the server's monitor-mode bookkeeping.
type monitorState struct {
	mu     sync.Mutex
	cfg    MonitorConfig
	engine *drift.Engine
	// rulesErr records an invalid Config.Monitor.Rules set; the loop
	// aborts on it before the first epoch.
	rulesErr error

	baselines map[int]*drift.Baseline
	deltas    []*drift.Delta // sequential epoch-over-epoch deltas
	rows      []drift.CSVRow
	alerts    []drift.Alert
	pinned    []*drift.Delta // deltas vs the pinned baseline

	epochsDone   int
	currentEpoch int // -1 when idle
	lastEpoch    int
	done         bool
	lastError    string
}

// status snapshots the monitor state.
func (m *monitorState) status() MonitorStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MonitorStatus{
		Enabled:       true,
		StateDir:      m.cfg.StateDir,
		EpochsPlanned: m.cfg.Epochs,
		EpochsDone:    m.epochsDone,
		CurrentEpoch:  m.currentEpoch,
		LastEpoch:     m.lastEpoch,
		PinEpoch:      m.cfg.PinEpoch,
		AlertsTotal:   len(m.alerts),
		Firing:        m.engine.Firing(),
		Done:          m.done,
		LastError:     m.lastError,
	}
}

// MonitorStatus returns the monitor's status; ok is false when monitor
// mode is off.
func (s *Server) MonitorStatus() (MonitorStatus, bool) {
	if s.monitor == nil {
		return MonitorStatus{}, false
	}
	return s.monitor.status(), true
}

// MonitorDone exposes the monitor's completion channel (closed after the
// last epoch, or on a fatal error); nil when monitor mode is off.
func (s *Server) MonitorDone() <-chan struct{} { return s.monitorDone }

// baselineFile names epoch e's persisted baseline.
func baselineFile(dir string, e int) string {
	return filepath.Join(dir, fmt.Sprintf("baseline-e%04d.json", e))
}

// deltaFile names the persisted sequential delta from→to.
func deltaFile(dir string, from, to int) string {
	return filepath.Join(dir, fmt.Sprintf("delta-e%04d-e%04d.json", from, to))
}

// pinnedFile names the persisted pinned delta for epoch e.
func pinnedFile(dir string, e int) string {
	return filepath.Join(dir, fmt.Sprintf("pinned-e%04d.json", e))
}

// monitorLoop is the recurring-measurement goroutine. It stops early
// when Shutdown closes scaleStop or cancels the base context.
func (s *Server) monitorLoop() {
	defer s.wg.Done()
	defer close(s.monitorDone)
	m := s.monitor

	fail := func(err error) {
		s.log.Error("monitor failed", "error", err.Error())
		m.mu.Lock()
		m.lastError = err.Error()
		m.currentEpoch = -1
		m.done = true
		m.mu.Unlock()
	}

	if m.rulesErr != nil {
		fail(fmt.Errorf("monitor rules: %w", m.rulesErr))
		return
	}
	spec, err := m.cfg.Spec.normalize(s.cfg.Limits)
	if err != nil {
		fail(fmt.Errorf("monitor spec: %w", err))
		return
	}
	if err := os.MkdirAll(m.cfg.StateDir, 0o755); err != nil {
		fail(err)
		return
	}

	epochsTotal := s.reg.Counter("monitor.epochs.total")
	currentEpoch := s.reg.Gauge("monitor.current_epoch")
	alertsTotal := s.reg.Counter("drift.alerts.total")
	firing := s.reg.Gauge("drift.alerts.firing")

	for i := 0; i < m.cfg.Epochs; i++ {
		epoch := m.cfg.StartEpoch + i
		select {
		case <-s.scaleStop:
			return
		case <-s.baseCtx.Done():
			return
		default:
		}
		if i > 0 && m.cfg.Interval > 0 {
			select {
			case <-s.scaleStop:
				return
			case <-s.baseCtx.Done():
				return
			case <-time.After(m.cfg.Interval):
			}
		}

		// Resume: a baseline persisted by an earlier run of the same
		// state directory replaces the crawl; deltas and alerts are
		// replayed from it deterministically below.
		b, resumed, err := loadBaseline(m.cfg.StateDir, epoch)
		if err != nil {
			fail(fmt.Errorf("epoch %d: %w", epoch, err))
			return
		}
		if !resumed {
			m.mu.Lock()
			m.currentEpoch = epoch
			m.mu.Unlock()
			currentEpoch.Set(int64(epoch))
			s.log.Info("monitor epoch started", "epoch", epoch)
			b, err = s.runEpoch(spec, epoch)
			if err != nil {
				if s.baseCtx.Err() != nil {
					return // shutdown canceled the run
				}
				fail(fmt.Errorf("epoch %d: %w", epoch, err))
				return
			}
			data, err := b.Encode()
			if err != nil {
				fail(err)
				return
			}
			if err := os.WriteFile(baselineFile(m.cfg.StateDir, epoch), data, 0o644); err != nil {
				fail(err)
				return
			}
		} else {
			s.log.Info("monitor epoch resumed from baseline", "epoch", epoch)
		}

		if err := s.monitorAdvance(m, b, epoch); err != nil {
			fail(err)
			return
		}
		epochsTotal.Inc()
		alertsTotal.Add(int64(m.lastEpochAlerts(epoch)))
		firing.Set(int64(m.engine.Firing()))
		s.log.Info("monitor epoch done", "epoch", epoch, "alerts", m.lastEpochAlerts(epoch))
	}
	m.mu.Lock()
	m.currentEpoch = -1
	m.done = true
	m.mu.Unlock()
	currentEpoch.Set(-1)
	s.log.Info("monitor finished", "epochs", m.cfg.Epochs)
}

// runEpoch runs one epoch's measurement outside the job queue (the
// monitor must not compete with submitted jobs for queue slots, and its
// results are persisted, not cached).
func (s *Server) runEpoch(spec JobSpec, epoch int) (*drift.Baseline, error) {
	runner := s.cfg.Runner
	if runner == nil {
		runner = webmeasure.Run
	}
	spec.Epoch = epoch
	cfg := spec.config(s.reg)
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	r, err := runner(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return r.DriftBaseline(), nil
}

// monitorAdvance folds one completed epoch's baseline into the monitor
// state — sequential delta, pinned delta, alert evaluation, drift
// metrics — and rewrites the derived artifacts.
func (s *Server) monitorAdvance(m *monitorState, b *drift.Baseline, epoch int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.baselines[epoch] = b
	prev, hasPrev := m.baselines[m.lastEpoch]
	if m.epochsDone == 0 {
		hasPrev = false
	}
	m.lastEpoch = epoch
	m.epochsDone++
	m.currentEpoch = -1
	dir := m.cfg.StateDir

	if hasPrev {
		d, err := drift.Diff(prev, b)
		if err != nil {
			return err
		}
		alerts := m.engine.Evaluate(d)
		m.deltas = append(m.deltas, d)
		m.rows = append(m.rows, drift.CSVRow{Delta: d, Alerts: len(alerts)})
		m.alerts = append(m.alerts, alerts...)
		data, err := d.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(deltaFile(dir, d.FromEpoch, d.ToEpoch), data, 0o644); err != nil {
			return err
		}
		s.publishDriftMetrics(d)
	}
	if pin, ok := m.baselines[m.cfg.PinEpoch]; ok && epoch != m.cfg.PinEpoch {
		d, err := drift.Diff(pin, b)
		if err != nil {
			return err
		}
		m.pinned = append(m.pinned, d)
		data, err := d.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(pinnedFile(dir, epoch), data, 0o644); err != nil {
			return err
		}
	}
	return m.rewriteArtifactsLocked()
}

// publishDriftMetrics exports the latest sequential delta as gauges.
func (s *Server) publishDriftMetrics(d *drift.Delta) {
	s.reg.FloatGauge("drift.tracking_share").Set(d.TrackingShareTo)
	s.reg.FloatGauge("drift.tracking_share_drift").Set(d.TrackingShareDrift)
	s.reg.FloatGauge("drift.third_party_jaccard").Set(d.ThirdPartyJaccard)
	s.reg.FloatGauge("drift.tree_similarity").Set(d.TreeSimilarity)
	s.reg.Gauge("drift.new_third_parties").Set(int64(len(d.NewThirdParties)))
	s.reg.Gauge("drift.vanished_third_parties").Set(int64(len(d.VanishedThirdParties)))
}

// lastEpochAlerts counts the alerts fired at one epoch.
func (m *monitorState) lastEpochAlerts(epoch int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, a := range m.alerts {
		if a.Epoch == epoch {
			n++
		}
	}
	return n
}

// rewriteArtifactsLocked rewrites alerts.jsonl, drift.csv, and
// drift-report.txt from the accumulated state. Full rewrites keep the
// files correct under resume (no duplicate appends) and byte-identical
// to a fresh run. Caller holds m.mu.
func (m *monitorState) rewriteArtifactsLocked() error {
	dir := m.cfg.StateDir

	var alertsBuf bytes.Buffer
	for _, a := range m.alerts {
		line, err := json.Marshal(a)
		if err != nil {
			return err
		}
		alertsBuf.Write(line)
		alertsBuf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "alerts.jsonl"), alertsBuf.Bytes(), 0o644); err != nil {
		return err
	}

	var csvBuf bytes.Buffer
	if err := drift.WriteCSV(&csvBuf, m.rows); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "drift.csv"), csvBuf.Bytes(), 0o644); err != nil {
		return err
	}

	var repBuf bytes.Buffer
	for i, d := range m.deltas {
		if i > 0 {
			fmt.Fprintln(&repBuf)
		}
		var epochAlerts []drift.Alert
		for _, a := range m.alerts {
			if a.Epoch == d.ToEpoch {
				epochAlerts = append(epochAlerts, a)
			}
		}
		report.WriteDriftSection(&repBuf, d, epochAlerts)
	}
	return os.WriteFile(filepath.Join(dir, "drift-report.txt"), repBuf.Bytes(), 0o644)
}

// loadBaseline loads a persisted epoch baseline if present.
func loadBaseline(dir string, epoch int) (*drift.Baseline, bool, error) {
	data, err := os.ReadFile(baselineFile(dir, epoch))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	b, err := drift.DecodeBaseline(data)
	if err != nil {
		return nil, false, err
	}
	if b.Meta.Epoch != epoch {
		return nil, false, fmt.Errorf("drift: %s holds epoch %d", baselineFile(dir, epoch), b.Meta.Epoch)
	}
	return b, true, nil
}
