package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"webmeasure/internal/version"
)

// datasetFlushEvery is how many visits a streamed JSONL download writes
// between flushes to the client.
const datasetFlushEvery = 256

// Handler returns the server's HTTP API:
//
//	POST   /v1/jobs                  submit a JobSpec (JSON body)
//	GET    /v1/jobs                  list jobs in submission order
//	GET    /v1/jobs/{id}             job status
//	DELETE /v1/jobs/{id}             cancel a queued/running job
//	GET    /v1/jobs/{id}/report      rendered text report
//	GET    /v1/jobs/{id}/result.json JSON result bundle
//	GET    /v1/jobs/{id}/result.csv  concatenated CSV tables
//	GET    /v1/jobs/{id}/dataset.jsonl streamed raw visits
//	GET    /v1/jobs/{id}/dataset.col   raw visits in the columnar format
//	GET    /v1/jobs/{id}/trace.json  Chrome trace-event JSON (404 if untraced)
//	GET    /v1/jobs/{id}/trace.jsonl span-per-line trace export
//	GET    /healthz                  liveness, build identity, uptime, stats
//	GET    /metrics                  Prometheus text exposition
//	GET    /debug/                   index of the debug endpoints
//	GET    /debug/pprof/             live profiling (go tool pprof)
//	GET    /debug/traces             recent traced jobs, newest first
//	GET    /debug/traces/{id}        trace.json by job ID (chrome://tracing)
//	GET    /debug/scale              recent autoscaling events + pool state
//	GET    /debug/drift              drift-monitor status, last delta, alerts
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Live profiling of the serving process: `go tool pprof
	// http://host/debug/pprof/profile` for CPU, `/debug/pprof/heap` for
	// allocations — the serving-mode counterpart of cmd/analyze's
	// -cpuprofile/-memprofile flags. Wired explicitly so the service mux
	// never depends on http.DefaultServeMux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.artifact(func(r *result) ([]byte, string) {
		return r.report, "text/plain; charset=utf-8"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/result.json", s.artifact(func(r *result) ([]byte, string) {
		return r.json, "application/json"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/result.csv", s.artifact(func(r *result) ([]byte, string) {
		return r.csv, "text/csv; charset=utf-8"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/dataset.jsonl", s.handleDataset)
	mux.HandleFunc("GET /v1/jobs/{id}/dataset.col", s.handleDatasetCol)
	mux.HandleFunc("GET /v1/jobs/{id}/partial.json", s.handlePartial)
	mux.HandleFunc("GET /v1/jobs/{id}/trace.json", s.traceArtifact(func(r *result) ([]byte, string) {
		return r.traceChrome, "application/json"
	}))
	mux.HandleFunc("GET /v1/jobs/{id}/trace.jsonl", s.traceArtifact(func(r *result) ([]byte, string) {
		return r.traceJSONL, "application/x-ndjson"
	}))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// "GET /debug/{$}" matches exactly /debug/ — Go 1.22 precedence keeps
	// the more specific pprof/traces/scale/drift routes intact.
	mux.HandleFunc("GET /debug/{$}", s.handleDebugIndex)
	mux.HandleFunc("GET /debug/traces", s.handleTraceList)
	mux.HandleFunc("GET /debug/scale", s.handleScale)
	mux.HandleFunc("GET /debug/drift", s.handleDrift)
	mux.HandleFunc("GET /debug/traces/{id}", s.traceArtifact(func(r *result) ([]byte, string) {
		return r.traceChrome, "application/json"
	}))
	return mux
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: "+err.Error())
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Tell the client when a slot should open, from the pool's current
		// drain rate (recent mean job duration over busy workers).
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	view := job.view()
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	code := http.StatusAccepted
	if view.State == StateDone { // served straight from cache
		code = http.StatusOK
	}
	writeJSON(w, code, view)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	views := make([]jobJSON, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.mu.Lock()
	view := job.view()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	s.mu.Lock()
	view := job.view()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// artifact builds a handler serving one rendered artifact of a finished
// job. Unfinished jobs answer 409 with the job state so pollers can tell
// "not yet" from "never".
func (s *Server) artifact(pick func(*result) ([]byte, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		res, ok := s.finishedResult(w, r)
		if !ok {
			return
		}
		body, contentType := pick(res)
		if body == nil {
			// A shard job publishes partial.json, not the report family.
			writeError(w, http.StatusNotFound, "job holds no such artifact")
			return
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(body)
	}
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	res, ok := s.finishedResult(w, r)
	if !ok {
		return
	}
	if res.dataset == nil {
		// e.g. a shard result cached from a remote dispatch: the
		// coordinator stored the partial bytes, never the visits.
		writeError(w, http.StatusNotFound, "job holds no dataset")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = res.dataset.StreamJSONL(w, datasetFlushEvery)
}

// handleDatasetCol serves the job's visits in the compact columnar
// format — available for every job that holds a dataset, whatever its
// requested DatasetFormat, since the encoding is a pure function of the
// visits.
func (s *Server) handleDatasetCol(w http.ResponseWriter, r *http.Request) {
	res, ok := s.finishedResult(w, r)
	if !ok {
		return
	}
	if res.dataset == nil {
		writeError(w, http.StatusNotFound, "job holds no dataset")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_ = res.dataset.WriteCol(w)
}

// handlePartial serves a shard job's encoded partial. Whole-experiment
// jobs answer 404 — their artifacts are the rendered report family.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	res, ok := s.finishedResult(w, r)
	if !ok {
		return
	}
	if res.partial == nil {
		writeError(w, http.StatusNotFound, "job is not a shard job (set shards and shard in the spec)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(res.partial)
}

// finishedResult resolves the request's job and returns its result,
// writing the error response itself when the job is missing or not done.
func (s *Server) finishedResult(w http.ResponseWriter, r *http.Request) (*result, bool) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return nil, false
	}
	s.mu.Lock()
	state, res, errMsg := job.state, job.res, job.err
	s.mu.Unlock()
	switch state {
	case StateDone:
		return res, true
	case StateFailed:
		writeError(w, http.StatusInternalServerError, "job failed: "+errMsg)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled: "+errMsg)
	default:
		writeError(w, http.StatusConflict, "job not finished (state "+string(state)+")")
	}
	return nil, false
}

// traceArtifact serves a trace rendering of a finished job. A finished
// job that ran without tracing answers 404 — "this job has no trace" is
// a different condition from "job not finished" (409 via finishedResult).
func (s *Server) traceArtifact(pick func(*result) ([]byte, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		res, ok := s.finishedResult(w, r)
		if !ok {
			return
		}
		body, contentType := pick(res)
		if body == nil {
			writeError(w, http.StatusNotFound, "job ran without tracing (set trace_sample in the spec)")
			return
		}
		w.Header().Set("Content-Type", contentType)
		_, _ = w.Write(body)
	}
}

// handleTraceList serves the recent-traces ring: the last finished traced
// jobs, newest first, each linking to its trace.json.
func (s *Server) handleTraceList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	entries := make([]traceEntry, len(s.traces))
	copy(entries, s.traces)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"traces": entries})
}

// handleScale serves the autoscaler's recent applied events (oldest
// first) plus the pool's current state — the live counterpart of the
// loadgen SLO report's scale-event section.
func (s *Server) handleScale(w http.ResponseWriter, _ *http.Request) {
	events, total := s.pool.snapshotEvents()
	st := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"workers_current": st.Workers,
		"min_workers":     st.MinWorkers,
		"max_workers":     st.MaxWorkers,
		"busy_workers":    st.BusyWorkers,
		"events_total":    total,
		"events":          events,
	})
}

// handleHealthz answers liveness with the build identity, process
// uptime, queue/pool stats, and (when monitor mode is on) the drift
// monitor's progress — one probe tells an operator what is running,
// for how long, and whether the longitudinal loop is healthy.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"version":        version.Version,
		"build":          version.String(),
		"go_version":     runtime.Version(),
		"uptime_seconds": time.Since(s.started).Seconds(),
		"stats":          s.Stats(),
	}
	if st, ok := s.MonitorStatus(); ok {
		body["monitor"] = st
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// Runtime gauges are sampled at scrape time, not on a background
	// ticker — scrapes always see current values and an idle server burns
	// no cycles keeping them fresh.
	s.sampleRuntime()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Snapshot().WritePrometheus(w)
}
