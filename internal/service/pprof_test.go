package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
)

// TestPprofEndpoints checks the live-profiling routes ride the service mux:
// the index lists profiles, a concrete profile (heap) is downloadable, and
// the debug surface does not shadow the API routes.
func TestPprofEndpoints(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := get(t, ts.URL+"/debug/pprof/")
	if code != 200 || !bytes.Contains(body, []byte("heap")) {
		t.Fatalf("pprof index: code %d, %d bytes", code, len(body))
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/heap"); code != 200 {
		t.Fatalf("heap profile: code %d", code)
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("cmdline: code %d", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("healthz must stay reachable: code %d", code)
	}
}
