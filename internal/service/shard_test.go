package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testLimits mirrors the server defaults so specs can be normalized
// without standing up a server.
var testLimits = Limits{MaxSites: 2000, MaxPagesPerSite: 50, MaxShards: 16}

func normalized(t *testing.T, spec JobSpec) JobSpec {
	t.Helper()
	norm, err := spec.normalize(testLimits)
	if err != nil {
		t.Fatalf("normalize %+v: %v", spec, err)
	}
	return norm
}

// TestShardCacheKeyIsolation: the result cache must never hand a shard
// job another shard's (or plan's, or the whole experiment's) bytes. Every
// distinct (shards, shard, shard seed) combination needs a distinct key,
// and the unsharded spec must keep the key it had before sharding existed.
func TestShardCacheKeyIsolation(t *testing.T) {
	base := tinySpec(7)
	specs := []JobSpec{
		base, // whole experiment
		{Seed: 7, Sites: 5, PagesPerSite: 2, Shards: 2},                // 2-shard coordinator
		{Seed: 7, Sites: 5, PagesPerSite: 2, Shards: 2, Shard: 1},      // 2-shard slice 1
		{Seed: 7, Sites: 5, PagesPerSite: 2, Shards: 2, Shard: 2},      // 2-shard slice 2
		{Seed: 7, Sites: 5, PagesPerSite: 2, Shards: 4},                // 4-shard coordinator
		{Seed: 7, Sites: 5, PagesPerSite: 2, Shards: 4, Shard: 1},      // 4-shard slice 1
		{Seed: 7, Sites: 5, PagesPerSite: 2, Shards: 2, ShardSeed: 99}, // reseeded plan
		{Seed: 7, Sites: 5, PagesPerSite: 2, Shards: 2, Shard: 1, ShardSeed: 99},
	}
	seen := map[string]JobSpec{}
	for _, spec := range specs {
		key := normalized(t, spec).cacheKey()
		if prev, dup := seen[key]; dup {
			t.Errorf("specs %+v and %+v share cache key %q", prev, spec, key)
		}
		seen[key] = spec
	}

	// Worker count must still be invisible to the key — sharded or not.
	workers := base
	workers.Workers = 7
	if normalized(t, workers).cacheKey() != normalized(t, base).cacheKey() {
		t.Error("worker count leaked into the cache key")
	}
	// Same for the crawl's site-worker pool: the crawl output is
	// byte-identical for every pool size, so the result is shareable.
	siteWorkers := base
	siteWorkers.SiteWorkers = 6
	if normalized(t, siteWorkers).cacheKey() != normalized(t, base).cacheKey() {
		t.Error("site-worker count leaked into the cache key")
	}
	// An unsharded spec must not grow shard fields in its key: cached
	// results from before a redeploy with sharding enabled stay valid.
	if key := normalized(t, base).cacheKey(); strings.Contains(key, "shard") {
		t.Errorf("unsharded cache key mentions sharding: %s", key)
	}
}

// TestShardSpecValidation: malformed shard specs are rejected at submit
// time, not deep inside a worker.
func TestShardSpecValidation(t *testing.T) {
	if _, err := (JobSpec{Shard: 1}).normalize(testLimits); err == nil {
		t.Error("shard without shards accepted")
	}
	if _, err := (JobSpec{Shards: 2, Shard: 3}).normalize(testLimits); err == nil {
		t.Error("shard beyond shards accepted")
	}
	if _, err := (JobSpec{Shards: 99}).normalize(testLimits); err == nil {
		t.Error("shards beyond MaxShards accepted")
	}
	norm, err := (JobSpec{Seed: 3, Shards: 2}).normalize(testLimits)
	if err != nil {
		t.Fatal(err)
	}
	if norm.ShardSeed != 3 {
		t.Errorf("shard seed defaulted to %d, want the job seed 3", norm.ShardSeed)
	}
}

// fetchArtifacts downloads the three text artifacts of a done job.
func fetchArtifacts(t *testing.T, ts *httptest.Server, id string) (report, js, csv []byte) {
	t.Helper()
	code, rep := get(t, ts.URL+"/v1/jobs/"+id+"/report")
	if code != 200 {
		t.Fatalf("report fetch: %d", code)
	}
	code, j := get(t, ts.URL+"/v1/jobs/"+id+"/result.json")
	if code != 200 {
		t.Fatalf("json fetch: %d", code)
	}
	code, c := get(t, ts.URL+"/v1/jobs/"+id+"/result.csv")
	if code != 200 {
		t.Fatalf("csv fetch: %d", code)
	}
	return rep, j, c
}

// runToDone submits a spec and waits for a terminal state.
func runToDone(t *testing.T, s *Server, ts *httptest.Server, spec JobSpec) jobJSON {
	t.Helper()
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	v = pollDone(t, s, ts, v.ID)
	if v.State != StateDone {
		t.Fatalf("job ended %q (err %q)", v.State, v.Error)
	}
	return v
}

// counterValue reads one counter from a server's registry.
func counterValue(s *Server, name string) int64 {
	for _, c := range s.Metrics().Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestCoordinatorMatchesSingleProcess: a coordinator job with no remote
// workers (every shard runs in-process) must publish report/JSON/CSV
// byte-identical to the plain unsharded job, under fault injection, and
// its registry's fault/retry counter families must equal the single
// process's — the coordinator sees the sum over shards (satellite:
// mergeable metrics).
func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	single := New(Config{Workers: 2})
	defer single.Shutdown(context.Background())
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	coord := New(Config{Workers: 2})
	defer coord.Shutdown(context.Background())
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	spec := JobSpec{Seed: 13, Sites: 6, PagesPerSite: 3, Workers: 2, FaultProfile: "heavy"}
	sv := runToDone(t, single, singleTS, spec)
	sRep, sJS, sCSV := fetchArtifacts(t, singleTS, sv.ID)

	shardSpec := spec
	shardSpec.Shards = 3
	cv := runToDone(t, coord, coordTS, shardSpec)
	cRep, cJS, cCSV := fetchArtifacts(t, coordTS, cv.ID)

	if !bytes.Equal(sRep, cRep) {
		t.Errorf("report differs: single %d bytes, coordinator %d bytes", len(sRep), len(cRep))
	}
	if !bytes.Equal(sJS, cJS) {
		t.Errorf("result.json differs: single %d bytes, coordinator %d bytes", len(sJS), len(cJS))
	}
	if !bytes.Equal(sCSV, cCSV) {
		t.Errorf("result.csv differs: single %d bytes, coordinator %d bytes", len(sCSV), len(cCSV))
	}

	sawFault := false
	for _, c := range single.Metrics().Snapshot().Counters {
		if !strings.HasPrefix(c.Name, "faults.injected") && !strings.HasPrefix(c.Name, "crawl.retries.total") {
			continue
		}
		sawFault = true
		if got := counterValue(coord, c.Name); got != c.Value {
			t.Errorf("counter %s: coordinator has %d, single process has %d", c.Name, got, c.Value)
		}
	}
	if !sawFault {
		t.Error("heavy-fault job recorded no fault counters to compare")
	}
}

// TestShardWorkerFailure: one shard worker answers every request with a
// 500; the coordinator must retry the dispatch on the healthy worker and
// still publish artifacts byte-identical to the unsharded job (satellite:
// shard-worker fault tolerance).
func TestShardWorkerFailure(t *testing.T) {
	// Golden bytes from a plain unsharded server.
	golden := New(Config{Workers: 2})
	defer golden.Shutdown(context.Background())
	goldenTS := httptest.NewServer(golden.Handler())
	defer goldenTS.Close()
	spec := JobSpec{Seed: 17, Sites: 6, PagesPerSite: 3, Workers: 2, FaultProfile: "light"}
	gv := runToDone(t, golden, goldenTS, spec)
	gRep, gJS, gCSV := fetchArtifacts(t, goldenTS, gv.ID)

	// A healthy shard worker and one that always fails.
	worker := New(Config{Workers: 2})
	defer worker.Shutdown(context.Background())
	workerTS := httptest.NewServer(worker.Handler())
	defer workerTS.Close()
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "injected worker outage", http.StatusInternalServerError)
	}))
	defer broken.Close()

	// The broken worker is listed first, so every shard dispatch hits it
	// before failing over to the healthy one.
	coord := New(Config{
		Workers:       2,
		ShardWorkers:  []string{broken.URL, workerTS.URL},
		ShardAttempts: 2,
		ShardPoll:     10 * time.Millisecond,
	})
	defer coord.Shutdown(context.Background())
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	shardSpec := spec
	shardSpec.Shards = 2
	cv := runToDone(t, coord, coordTS, shardSpec)
	cRep, cJS, cCSV := fetchArtifacts(t, coordTS, cv.ID)

	if !bytes.Equal(gRep, cRep) {
		t.Error("report differs from the unsharded golden after a worker failure")
	}
	if !bytes.Equal(gJS, cJS) {
		t.Error("result.json differs from the unsharded golden after a worker failure")
	}
	if !bytes.Equal(gCSV, cCSV) {
		t.Error("result.csv differs from the unsharded golden after a worker failure")
	}
	if got := counterValue(coord, "service.shard.dispatch_retries"); got < 1 {
		t.Errorf("service.shard.dispatch_retries = %d, want ≥ 1 (broken worker was first in line)", got)
	}
	if got := counterValue(coord, "service.shard.remote"); got < 1 {
		t.Errorf("service.shard.remote = %d, want ≥ 1 (healthy worker should have served shards)", got)
	}
}

// TestShardWorkerAllDead: when every configured worker is down the
// coordinator falls back to computing the shards locally — availability
// degrades, correctness does not.
func TestShardWorkerAllDead(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "injected worker outage", http.StatusInternalServerError)
	}))
	defer broken.Close()

	coord := New(Config{
		Workers:       2,
		ShardWorkers:  []string{broken.URL},
		ShardAttempts: 1,
		ShardPoll:     10 * time.Millisecond,
	})
	defer coord.Shutdown(context.Background())
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()

	spec := JobSpec{Seed: 23, Sites: 5, PagesPerSite: 2, Workers: 2, Shards: 2}
	v := runToDone(t, coord, coordTS, spec)
	if v.Summary == nil || v.Summary.Sites == 0 {
		t.Fatalf("local-fallback job carries no summary: %+v", v)
	}
	if got := counterValue(coord, "service.shard.local_fallbacks"); got < 2 {
		t.Errorf("service.shard.local_fallbacks = %d, want ≥ 2 (both shards had no worker)", got)
	}
}

// TestShardJobPublishesPartial: a direct shard job exposes partial.json
// (and no report), a whole job exposes the report (and no partial).
func TestShardJobPublishesPartial(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Seed: 29, Sites: 5, PagesPerSite: 2, Workers: 2, Shards: 2, Shard: 1}
	v := runToDone(t, s, ts, spec)
	if code, body := get(t, ts.URL+"/v1/jobs/"+v.ID+"/partial.json"); code != 200 || !bytes.Contains(body, []byte(`"schema"`)) {
		t.Errorf("partial.json fetch: code %d, %d bytes", code, len(body))
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+v.ID+"/report"); code != 404 {
		t.Errorf("shard job served a report (code %d), want 404", code)
	}

	whole := runToDone(t, s, ts, tinySpec(29))
	if code, _ := get(t, ts.URL+"/v1/jobs/"+whole.ID+"/partial.json"); code != 404 {
		t.Errorf("whole job served partial.json (code %d), want 404", code)
	}
}
