package scaler

import (
	"math/rand"
	"strings"
	"testing"
)

// cfg is the policy every table case runs under: bounds 1..8, one extra
// queued job per worker tolerated, 500ms p95 target, 2s/10s cooldowns,
// 5s flap damper. Explicit (not defaulted) so the cases read literally.
var cfg = Config{
	MinWorkers:           1,
	MaxWorkers:           8,
	UpQueuePerWorker:     2.0,
	TargetP95QueueWaitMS: 500,
	DownP95Frac:          0.25,
	UpCooldownMS:         2000,
	DownCooldownMS:       10000,
	DownStableMS:         5000,
}

// TestDecideTable asserts every transition of the decision function from
// explicit input tuples: scale-up on depth, scale-up on p95, scale-down
// on idle, cooldown suppression in both directions, min/max clamping,
// and flap damping.
func TestDecideTable(t *testing.T) {
	cases := []struct {
		name       string
		in         Inputs
		verdict    Verdict
		target     int
		reasonPart string
	}{
		// --- scale-up on queue depth ---
		{
			name:       "up on depth: backlog over per-worker tolerance",
			in:         Inputs{NowMS: 10_000, QueueDepth: 5, BusyWorkers: 2, CurrentWorkers: 2, LastScaleMS: -1, LowLoadSinceMS: -1},
			verdict:    Up,
			target:     3, // ceil(5/2.0)=3
			reasonPart: "queue depth 5 > 4",
		},
		{
			name:       "up on depth: deep backlog jumps several workers at once",
			in:         Inputs{NowMS: 10_000, QueueDepth: 12, BusyWorkers: 2, CurrentWorkers: 2, LastScaleMS: -1, LowLoadSinceMS: -1},
			verdict:    Up,
			target:     6, // ceil(12/2.0)
			reasonPart: "queue depth",
		},
		{
			name:       "depth at exactly the threshold holds",
			in:         Inputs{NowMS: 10_000, QueueDepth: 4, BusyWorkers: 2, CurrentWorkers: 2, LastScaleMS: -1, LowLoadSinceMS: -1},
			verdict:    Hold,
			target:     2,
			reasonPart: "steady",
		},
		// --- scale-up on p95 queue wait ---
		{
			name:       "up on p95: latency breach with a short queue",
			in:         Inputs{NowMS: 10_000, QueueDepth: 1, BusyWorkers: 3, CurrentWorkers: 3, RecentP95QueueWaitMS: 900, LastScaleMS: -1, LowLoadSinceMS: -1},
			verdict:    Up,
			target:     4,
			reasonPart: "p95 queue wait 900ms > target 500ms",
		},
		{
			name:       "p95 at target holds",
			in:         Inputs{NowMS: 10_000, QueueDepth: 1, BusyWorkers: 3, CurrentWorkers: 3, RecentP95QueueWaitMS: 500, LastScaleMS: -1, LowLoadSinceMS: -1},
			verdict:    Hold,
			target:     3,
			reasonPart: "steady",
		},
		// --- scale-down on idle ---
		{
			name:       "down on idle: stable low load, cooldown clear",
			in:         Inputs{NowMS: 60_000, QueueDepth: 0, BusyWorkers: 1, CurrentWorkers: 4, RecentP95QueueWaitMS: 50, LastScaleMS: 20_000, LowLoadSinceMS: 50_000},
			verdict:    Down,
			target:     3, // one at a time
			reasonPart: "idle: queue empty, 1/4 workers busy",
		},
		{
			name:       "no down while every worker is busy",
			in:         Inputs{NowMS: 60_000, QueueDepth: 0, BusyWorkers: 4, CurrentWorkers: 4, RecentP95QueueWaitMS: 50, LastScaleMS: 20_000, LowLoadSinceMS: 50_000},
			verdict:    Hold,
			target:     4,
			reasonPart: "steady",
		},
		{
			name:       "no down while p95 above the down fraction",
			in:         Inputs{NowMS: 60_000, QueueDepth: 0, BusyWorkers: 1, CurrentWorkers: 4, RecentP95QueueWaitMS: 200, LastScaleMS: 20_000, LowLoadSinceMS: 50_000},
			verdict:    Hold,
			target:     4,
			reasonPart: "steady", // 200 > 0.25*500=125 → not low load
		},
		// --- cooldown suppression ---
		{
			name:       "up suppressed inside the up cooldown",
			in:         Inputs{NowMS: 10_000, QueueDepth: 9, BusyWorkers: 2, CurrentWorkers: 2, LastScaleMS: 9_000, LowLoadSinceMS: -1},
			verdict:    Hold,
			target:     2,
			reasonPart: "up suppressed: cooldown (1000ms since last scale < 2000ms)",
		},
		{
			name:       "up allowed once the cooldown expires",
			in:         Inputs{NowMS: 11_001, QueueDepth: 9, BusyWorkers: 2, CurrentWorkers: 2, LastScaleMS: 9_000, LowLoadSinceMS: -1},
			verdict:    Up,
			target:     5,
			reasonPart: "queue depth",
		},
		{
			name:       "down suppressed inside the down cooldown",
			in:         Inputs{NowMS: 25_000, QueueDepth: 0, BusyWorkers: 0, CurrentWorkers: 4, RecentP95QueueWaitMS: 0, LastScaleMS: 20_000, LowLoadSinceMS: 15_000},
			verdict:    Hold,
			target:     4,
			reasonPart: "down suppressed: cooldown (5000ms since last scale < 10000ms)",
		},
		// --- flap damping ---
		{
			name:       "down suppressed until low load is stable",
			in:         Inputs{NowMS: 60_000, QueueDepth: 0, BusyWorkers: 1, CurrentWorkers: 4, RecentP95QueueWaitMS: 50, LastScaleMS: 20_000, LowLoadSinceMS: 57_000},
			verdict:    Hold,
			target:     4,
			reasonPart: "low load not yet stable for 5000ms",
		},
		{
			name:       "down suppressed when low load just flipped (never observed)",
			in:         Inputs{NowMS: 60_000, QueueDepth: 0, BusyWorkers: 1, CurrentWorkers: 4, RecentP95QueueWaitMS: 50, LastScaleMS: 20_000, LowLoadSinceMS: -1},
			verdict:    Hold,
			target:     4,
			reasonPart: "low load not yet stable",
		},
		// --- min/max clamping ---
		{
			name:       "up capped at max-workers",
			in:         Inputs{NowMS: 10_000, QueueDepth: 100, BusyWorkers: 7, CurrentWorkers: 7, LastScaleMS: -1, LowLoadSinceMS: -1},
			verdict:    Up,
			target:     8, // ceil(100/2)=50, clamped
			reasonPart: "queue depth",
		},
		{
			name:       "overloaded at max holds",
			in:         Inputs{NowMS: 10_000, QueueDepth: 100, BusyWorkers: 8, CurrentWorkers: 8, LastScaleMS: -1, LowLoadSinceMS: -1},
			verdict:    Hold,
			target:     8,
			reasonPart: "at max-workers 8",
		},
		{
			name:       "idle at min holds",
			in:         Inputs{NowMS: 60_000, QueueDepth: 0, BusyWorkers: 0, CurrentWorkers: 1, RecentP95QueueWaitMS: 0, LastScaleMS: -1, LowLoadSinceMS: 40_000},
			verdict:    Hold,
			target:     1,
			reasonPart: "at min-workers 1",
		},
		{
			name:       "below min clamps up, ignoring cooldown",
			in:         Inputs{NowMS: 10_000, QueueDepth: 0, BusyWorkers: 0, CurrentWorkers: 0, LastScaleMS: 9_999, LowLoadSinceMS: -1},
			verdict:    Up,
			target:     1,
			reasonPart: "clamp: 0 workers below min-workers 1",
		},
		{
			name:       "above max clamps down, ignoring cooldown and damping",
			in:         Inputs{NowMS: 10_000, QueueDepth: 3, BusyWorkers: 9, CurrentWorkers: 9, LastScaleMS: 9_999, LowLoadSinceMS: -1},
			verdict:    Down,
			target:     8,
			reasonPart: "clamp: 9 workers above max-workers 8",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Decide(cfg, tc.in)
			if d.Verdict != tc.verdict || d.Target != tc.target {
				t.Fatalf("Decide(%+v) = %q target %d (%s), want %q target %d",
					tc.in, d.Verdict, d.Target, d.Reason, tc.verdict, tc.target)
			}
			if !strings.Contains(d.Reason, tc.reasonPart) {
				t.Fatalf("reason %q does not contain %q", d.Reason, tc.reasonPart)
			}
		})
	}
}

// rank orders verdicts for the monotonicity property: more load must
// never move the decision toward shrinking.
func rank(v Verdict) int {
	switch v {
	case Down:
		return -1
	case Up:
		return 1
	default:
		return 0
	}
}

// TestDecideMonotoneInQueueDepth is the property test: holding every
// other input fixed, increasing the queue depth never lowers the verdict
// rank (down < hold < up) and never lowers the target worker count.
func TestDecideMonotoneInQueueDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20_000; i++ {
		in := Inputs{
			NowMS:                rng.Int63n(120_000),
			QueueDepth:           rng.Intn(40),
			BusyWorkers:          rng.Intn(10),
			CurrentWorkers:       rng.Intn(10),
			RecentP95QueueWaitMS: float64(rng.Intn(1200)),
			LastScaleMS:          rng.Int63n(120_000) - 1, // includes -1
			LowLoadSinceMS:       rng.Int63n(120_000) - 1,
		}
		bumped := in
		bumped.QueueDepth += 1 + rng.Intn(20)

		a, b := Decide(cfg, in), Decide(cfg, bumped)
		if rank(b.Verdict) < rank(a.Verdict) {
			t.Fatalf("verdict not monotone: depth %d → %q but depth %d → %q (in=%+v)",
				in.QueueDepth, a.Verdict, bumped.QueueDepth, b.Verdict, in)
		}
		if b.Target < a.Target {
			t.Fatalf("target not monotone: depth %d → %d but depth %d → %d (in=%+v)",
				in.QueueDepth, a.Target, bumped.QueueDepth, b.Target, in)
		}
	}
}

// TestDecideDeterministic: the same inputs must yield byte-identical
// decisions — the property the golden loadgen suite builds on.
func TestDecideDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		in := Inputs{
			NowMS:                rng.Int63n(120_000),
			QueueDepth:           rng.Intn(40),
			BusyWorkers:          rng.Intn(10),
			CurrentWorkers:       1 + rng.Intn(8),
			RecentP95QueueWaitMS: float64(rng.Intn(1200)),
			LastScaleMS:          rng.Int63n(120_000) - 1,
			LowLoadSinceMS:       rng.Int63n(120_000) - 1,
		}
		a, b := Decide(cfg, in), Decide(cfg, in)
		if a != b {
			t.Fatalf("Decide not deterministic: %+v vs %+v", a, b)
		}
	}
}

// TestDecideTargetStaysInBounds: whatever the inputs, the target the
// decision asks for is inside [MinWorkers, MaxWorkers].
func TestDecideTargetStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20_000; i++ {
		in := Inputs{
			NowMS:                rng.Int63n(120_000),
			QueueDepth:           rng.Intn(200),
			BusyWorkers:          rng.Intn(16),
			CurrentWorkers:       rng.Intn(16),
			RecentP95QueueWaitMS: float64(rng.Intn(5000)),
			LastScaleMS:          rng.Int63n(120_000) - 1,
			LowLoadSinceMS:       rng.Int63n(120_000) - 1,
		}
		d := Decide(cfg, in)
		if d.Target < cfg.MinWorkers || d.Target > cfg.MaxWorkers {
			// A Hold outside the bounds can only echo an out-of-bounds
			// CurrentWorkers, which the clamp branches prevent.
			t.Fatalf("target %d outside [%d,%d] for %+v (%s)",
				d.Target, cfg.MinWorkers, cfg.MaxWorkers, in, d.Reason)
		}
	}
}

// TestWithDefaults pins the documented defaults and bound normalization.
func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MinWorkers != 1 || c.MaxWorkers != 1 {
		t.Fatalf("zero bounds defaulted to %d..%d, want 1..1", c.MinWorkers, c.MaxWorkers)
	}
	if c.UpQueuePerWorker != 2.0 || c.TargetP95QueueWaitMS != 500 || c.DownP95Frac != 0.25 {
		t.Fatalf("policy defaults wrong: %+v", c)
	}
	if c.UpCooldownMS != 2000 || c.DownCooldownMS != 10000 || c.DownStableMS != 5000 {
		t.Fatalf("cooldown defaults wrong: %+v", c)
	}
	inv := Config{MinWorkers: 5, MaxWorkers: 2}.WithDefaults()
	if inv.MaxWorkers != 5 {
		t.Fatalf("inverted bounds normalized to max=%d, want 5", inv.MaxWorkers)
	}
}

// TestEventString pins the rendering the SLO report embeds.
func TestEventString(t *testing.T) {
	e := Event{AtMS: 1500, From: 2, To: 3, Reason: "queue depth 5 > 4", QueueDepth: 5, P95QueueWaitMS: 321.4}
	want := "t=+1500ms 2->3 (queue=5 p95=321ms): queue depth 5 > 4"
	if got := e.String(); got != want {
		t.Fatalf("Event.String() = %q, want %q", got, want)
	}
}
