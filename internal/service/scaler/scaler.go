// Package scaler is the decision core of the job service's autoscaling
// worker pool. It is deliberately a pure function: every input the
// decision depends on — queue depth, the recent p95 queue wait, the
// current pool size, when the pool last scaled, how long load has been
// low — arrives in an explicit Inputs value, and time is whatever
// millisecond clock the caller runs on (wall time in the live server,
// simulated time in the loadgen harness). Same inputs, same verdict,
// which is what makes every transition table-testable and the loadgen
// golden suite able to pin an exact scale-event sequence.
//
// The policy is conventional queue-theoretic autoscaling:
//
//   - scale UP when the backlog exceeds UpQueuePerWorker jobs per worker,
//     or when the recent p95 queue wait breaches the SLO target;
//   - scale DOWN one worker at a time, only when the queue is empty, part
//     of the pool is idle, the p95 is comfortably under target, and that
//     low-load state has persisted for DownStableMS (flap damping);
//   - both directions respect a cooldown since the last applied scaling
//     in either direction, up's shorter than down's, so bursts grow the
//     pool quickly but shrinking is deliberate.
package scaler

import (
	"fmt"
	"math"
)

// Config tunes the decision policy. The zero value is completed by
// withDefaults; MinWorkers/MaxWorkers must be set by the caller (the
// service's -min-workers/-max-workers flags).
type Config struct {
	// MinWorkers and MaxWorkers bound the pool. Decide clamps a pool that
	// is outside the bounds back inside them before anything else.
	MinWorkers int `json:"min_workers"`
	MaxWorkers int `json:"max_workers"`
	// UpQueuePerWorker is the backlog tolerated per worker before a
	// scale-up (default 2.0): depth > ceil(UpQueuePerWorker·current).
	UpQueuePerWorker float64 `json:"up_queue_per_worker,omitempty"`
	// TargetP95QueueWaitMS is the latency trigger: a recent p95 queue
	// wait above it scales up even with a short queue (default 500).
	TargetP95QueueWaitMS float64 `json:"target_p95_queue_wait_ms,omitempty"`
	// DownP95Frac gates scale-down on latency being comfortably under
	// target: p95 ≤ DownP95Frac·TargetP95QueueWaitMS (default 0.25).
	DownP95Frac float64 `json:"down_p95_frac,omitempty"`
	// UpCooldownMS suppresses a scale-up within this window of the last
	// applied scaling in either direction (default 2000).
	UpCooldownMS int64 `json:"up_cooldown_ms,omitempty"`
	// DownCooldownMS does the same for scale-down; longer than up so the
	// pool prefers staying big over oscillating (default 10000).
	DownCooldownMS int64 `json:"down_cooldown_ms,omitempty"`
	// DownStableMS is the flap damper: low load must have persisted this
	// long before the first worker is removed (default 5000).
	DownStableMS int64 `json:"down_stable_ms,omitempty"`
}

// WithDefaults fills the zero policy fields (bounds excluded) with the
// documented defaults and normalizes inverted bounds.
func (c Config) WithDefaults() Config {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.UpQueuePerWorker <= 0 {
		c.UpQueuePerWorker = 2.0
	}
	if c.TargetP95QueueWaitMS <= 0 {
		c.TargetP95QueueWaitMS = 500
	}
	if c.DownP95Frac <= 0 {
		c.DownP95Frac = 0.25
	}
	if c.UpCooldownMS <= 0 {
		c.UpCooldownMS = 2000
	}
	if c.DownCooldownMS <= 0 {
		c.DownCooldownMS = 10000
	}
	if c.DownStableMS <= 0 {
		c.DownStableMS = 5000
	}
	return c
}

// Inputs is one observation of the pool, on whatever millisecond clock
// the caller runs (wall or simulated). The three timestamps use -1 for
// "never"/"not currently".
type Inputs struct {
	// NowMS is the observation time.
	NowMS int64
	// QueueDepth is the number of jobs waiting to run (excludes running).
	QueueDepth int
	// BusyWorkers is how many workers are mid-job right now.
	BusyWorkers int
	// CurrentWorkers is the pool size the last decision left behind.
	CurrentWorkers int
	// RecentP95QueueWaitMS is the p95 queue wait over the recent sample
	// window (0 when nothing completed recently).
	RecentP95QueueWaitMS float64
	// LastScaleMS is when the pool last applied a scaling in either
	// direction (-1 = never).
	LastScaleMS int64
	// LowLoadSinceMS is when the pool's low-load condition (empty queue,
	// idle capacity, p95 under the down threshold) last became true and
	// has held since (-1 = load is not currently low).
	LowLoadSinceMS int64
}

// Verdict is the direction of a decision.
type Verdict string

const (
	Up   Verdict = "up"
	Down Verdict = "down"
	Hold Verdict = "hold"
)

// Decision is the outcome of one evaluation: the direction, the worker
// count the pool should move to (== CurrentWorkers on Hold), and a
// human-readable reason that lands in logs, spans, and SLO reports.
type Decision struct {
	Verdict Verdict
	Target  int
	Reason  string
}

// Event is one applied scaling, as recorded by the service pool and the
// loadgen simulator — the unit of the "identical scale-event sequence"
// golden guarantee.
type Event struct {
	AtMS           int64   `json:"at_ms"`
	From           int     `json:"from"`
	To             int     `json:"to"`
	Reason         string  `json:"reason"`
	QueueDepth     int     `json:"queue_depth"`
	P95QueueWaitMS float64 `json:"p95_queue_wait_ms"`
}

// String renders the event the way the SLO report prints it.
func (e Event) String() string {
	return fmt.Sprintf("t=+%dms %d->%d (queue=%d p95=%.0fms): %s",
		e.AtMS, e.From, e.To, e.QueueDepth, e.P95QueueWaitMS, e.Reason)
}

// upThreshold is the queue depth a pool of cur workers tolerates before
// scaling up.
func upThreshold(c Config, cur int) int {
	return int(math.Ceil(c.UpQueuePerWorker * float64(cur)))
}

// LowLoad reports whether the inputs satisfy the scale-down precondition
// (before damping and cooldowns). Callers use it to maintain
// Inputs.LowLoadSinceMS between evaluations.
func LowLoad(c Config, in Inputs) bool {
	c = c.WithDefaults()
	return in.QueueDepth == 0 &&
		in.BusyWorkers < in.CurrentWorkers &&
		in.RecentP95QueueWaitMS <= c.DownP95Frac*c.TargetP95QueueWaitMS
}

// Decide evaluates the policy. It is a pure function of (c, in): no
// clocks, no randomness, no hidden state.
func Decide(c Config, in Inputs) Decision {
	c = c.WithDefaults()
	cur := in.CurrentWorkers

	// Bound clamping outranks every other rule, cooldowns included: a
	// pool outside its configured bounds is misconfigured, not scaling.
	if cur < c.MinWorkers {
		return Decision{Up, c.MinWorkers, fmt.Sprintf("clamp: %d workers below min-workers %d", cur, c.MinWorkers)}
	}
	if cur > c.MaxWorkers {
		return Decision{Down, c.MaxWorkers, fmt.Sprintf("clamp: %d workers above max-workers %d", cur, c.MaxWorkers)}
	}

	inCooldown := func(window int64) bool {
		return in.LastScaleMS >= 0 && in.NowMS-in.LastScaleMS < window
	}

	depthHigh := in.QueueDepth > upThreshold(c, cur)
	waitHigh := in.RecentP95QueueWaitMS > c.TargetP95QueueWaitMS
	if depthHigh || waitHigh {
		if cur >= c.MaxWorkers {
			return Decision{Hold, cur, fmt.Sprintf("overloaded but at max-workers %d", c.MaxWorkers)}
		}
		if inCooldown(c.UpCooldownMS) {
			return Decision{Hold, cur, fmt.Sprintf("up suppressed: cooldown (%dms since last scale < %dms)",
				in.NowMS-in.LastScaleMS, c.UpCooldownMS)}
		}
		// Target enough workers to put the backlog back under the per-
		// worker tolerance, at least one more than now; monotone (and
		// non-decreasing) in QueueDepth by construction.
		target := cur + 1
		if byDepth := int(math.Ceil(float64(in.QueueDepth) / c.UpQueuePerWorker)); byDepth > target {
			target = byDepth
		}
		if target > c.MaxWorkers {
			target = c.MaxWorkers
		}
		reason := fmt.Sprintf("queue depth %d > %d", in.QueueDepth, upThreshold(c, cur))
		if !depthHigh {
			reason = fmt.Sprintf("p95 queue wait %.0fms > target %.0fms", in.RecentP95QueueWaitMS, c.TargetP95QueueWaitMS)
		}
		return Decision{Up, target, reason}
	}

	if !LowLoad(c, in) {
		return Decision{Hold, cur, "steady"}
	}
	if cur <= c.MinWorkers {
		return Decision{Hold, cur, fmt.Sprintf("idle but at min-workers %d", c.MinWorkers)}
	}
	if in.LowLoadSinceMS < 0 || in.NowMS-in.LowLoadSinceMS < c.DownStableMS {
		return Decision{Hold, cur, fmt.Sprintf("down suppressed: low load not yet stable for %dms", c.DownStableMS)}
	}
	if inCooldown(c.DownCooldownMS) {
		return Decision{Hold, cur, fmt.Sprintf("down suppressed: cooldown (%dms since last scale < %dms)",
			in.NowMS-in.LastScaleMS, c.DownCooldownMS)}
	}
	// One worker at a time: shrinking is cheap to redo and expensive to
	// regret, so the pool never cliff-drops.
	return Decision{Down, cur - 1, fmt.Sprintf("idle: queue empty, %d/%d workers busy, p95 %.0fms <= %.0fms",
		in.BusyWorkers, cur, in.RecentP95QueueWaitMS, c.DownP95Frac*c.TargetP95QueueWaitMS)}
}
