// Package service turns the one-shot measurement pipeline into
// measurement-as-a-service: a long-running job server that accepts
// experiment specs over HTTP, runs them on a bounded worker pool (each
// job is a full crawl + analysis through the webmeasure facade), caches
// results in an LRU keyed by the canonicalized spec, and serves the
// rendered artifacts back. It is the serving layer the ROADMAP's
// production system needs — the paper's pipeline is rerun continuously
// with varying configurations (multi-vantage-point and longitudinal
// studies), exactly the workload a queue with a deterministic result
// cache amortizes.
//
// Lifecycle: POST /v1/jobs enqueues (or answers straight from cache),
// workers drain the queue, GET /v1/jobs/{id} polls, the artifact routes
// download results, DELETE cancels via per-job context. A full queue
// pushes back with 429 + Retry-After instead of buffering unboundedly,
// and Shutdown stops intake and drains accepted jobs before returning.
package service

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"webmeasure"
	"webmeasure/internal/core"
	"webmeasure/internal/drift"
	"webmeasure/internal/metrics"
	"webmeasure/internal/service/scaler"
	"webmeasure/internal/trace"
)

// Limits bounds what a single job may ask for, so one request cannot
// exhaust the server.
type Limits struct {
	MaxSites        int
	MaxPagesPerSite int
	// MaxShards bounds a job's shard count (default 16).
	MaxShards int
}

// Config parameterizes the server. The zero value is completed by New.
type Config struct {
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// QueueDepth bounds the jobs waiting to run; submissions beyond it
	// are rejected with 429 (default 16).
	QueueDepth int
	// CacheSize bounds the LRU result cache entries (default 64;
	// negative disables caching).
	CacheSize int
	// Limits guards per-job resource demands (defaults: 2000 sites, 100
	// pages per site).
	Limits Limits
	// Metrics receives service counters plus every job's crawl/analysis
	// instruments (default: a fresh registry; exposed at /metrics).
	Metrics *metrics.Registry
	// Logger receives structured job-lifecycle records (submitted,
	// started, finished) with job IDs and durations. nil discards them.
	Logger *slog.Logger
	// Runner overrides the job executor — tests and benchmarks stub the
	// pipeline here. nil runs webmeasure.Run.
	Runner func(ctx context.Context, cfg webmeasure.Config) (*webmeasure.Results, error)
	// ShardWorkers lists base URLs of peer servers a coordinator job fans
	// shard jobs out to (e.g. "http://10.0.0.2:8080"). Empty runs every
	// shard in-process — correct, just not distributed.
	ShardWorkers []string
	// ShardAttempts bounds how many workers a shard dispatch tries before
	// falling back to running the shard locally (default 3, clamped to the
	// worker count).
	ShardAttempts int
	// ShardPoll is the coordinator's polling interval while a remote shard
	// job runs (default 150ms).
	ShardPoll time.Duration
	// MinWorkers and MaxWorkers bound the autoscaling worker pool. Both
	// default to Workers — a fixed pool, autoscaling off. With MaxWorkers >
	// MinWorkers a supervisor re-evaluates the pool every ScaleInterval.
	MinWorkers int
	MaxWorkers int
	// ScaleInterval is the wall-clock supervisor's evaluation period
	// (default 250ms). Negative disables the supervisor so tests and the
	// loadgen harness can drive evaluateScale on their own clock.
	ScaleInterval time.Duration
	// Scaler tunes the scaling policy. Zero fields take the scaler
	// defaults; its bounds are overwritten from MinWorkers/MaxWorkers.
	Scaler scaler.Config
	// Tracer, if non-nil, records one span per applied scale event.
	Tracer *trace.Tracer
	// Monitor, if non-nil, starts the longitudinal drift monitor: a
	// background loop that reruns Monitor.Spec for a sequence of epochs,
	// persists per-epoch baselines to Monitor.StateDir, diffs adjacent
	// and pinned epochs, and evaluates alert rules on each delta.
	Monitor *MonitorConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.Limits.MaxSites <= 0 {
		c.Limits.MaxSites = 2000
	}
	if c.Limits.MaxPagesPerSite <= 0 {
		c.Limits.MaxPagesPerSite = 100
	}
	if c.Limits.MaxShards <= 0 {
		c.Limits.MaxShards = 16
	}
	if c.ShardAttempts <= 0 {
		c.ShardAttempts = 3
	}
	if c.ShardPoll <= 0 {
		c.ShardPoll = 150 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = metrics.New()
	}
	if c.Logger == nil {
		c.Logger = trace.DiscardLogger()
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = c.Workers
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = c.Workers
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	// The initial pool must sit inside the bounds.
	if c.Workers < c.MinWorkers {
		c.Workers = c.MinWorkers
	}
	if c.Workers > c.MaxWorkers {
		c.Workers = c.MaxWorkers
	}
	if c.ScaleInterval == 0 {
		c.ScaleInterval = 250 * time.Millisecond
	}
	c.Scaler.MinWorkers = c.MinWorkers
	c.Scaler.MaxWorkers = c.MaxWorkers
	c.Scaler = c.Scaler.WithDefaults()
	return c
}

// traceRingSize bounds the /debug/traces recent-traces listing.
const traceRingSize = 32

// traceEntry is one row of the /debug/traces listing: a finished job
// that ran with tracing on.
type traceEntry struct {
	JobID       string    `json:"job_id"`
	TraceCount  int       `json:"trace_count"`
	SpanCount   int       `json:"span_count"`
	SampleEvery int       `json:"sample_every"`
	FinishedAt  time.Time `json:"finished_at"`
	URL         string    `json:"url"`
}

// Server runs measurement jobs. Create with New, serve its Handler, and
// call Shutdown to drain.
type Server struct {
	cfg Config
	reg *metrics.Registry
	log *slog.Logger

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	cache    *resultCache
	queue    chan *Job
	draining bool
	seq      int64
	// traces is the recent-traces ring for /debug/traces: the last
	// traceRingSize finished jobs that ran with tracing on, newest first.
	traces []traceEntry

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup

	// pool is the autoscaling worker pool state; scaleStop ends its
	// wall-clock supervisor at shutdown.
	pool      *pool
	scaleStop chan struct{}

	// shard is the coordinator's HTTP client for remote shard workers
	// (nil when Config.ShardWorkers is empty).
	shard *shardClient

	// monitor is the drift-monitor state (nil when monitor mode is off);
	// monitorDone closes when the monitor loop exits.
	monitor     *monitorState
	monitorDone chan struct{}

	// started anchors the uptime reported by /healthz and /metrics.
	started time.Time

	// counters, bound once so the hot paths skip registry lookups
	mSubmitted, mCompleted, mFailed, mCanceled   *metrics.Counter
	mRejected, mCacheHits, mCacheMisses          *metrics.Counter
	mShardRemote, mShardRetries, mShardFallbacks *metrics.Counter
	mJobMS, mQueueMS                             *metrics.Histogram
}

// New creates the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		reg:       cfg.Metrics,
		log:       cfg.Logger,
		jobs:      make(map[string]*Job),
		cache:     newResultCache(cfg.CacheSize),
		queue:     make(chan *Job, cfg.QueueDepth),
		baseCtx:   ctx,
		cancelAll: cancel,
		started:   time.Now(),

		mSubmitted:      cfg.Metrics.Counter("service.jobs.submitted"),
		mCompleted:      cfg.Metrics.Counter("service.jobs.completed"),
		mFailed:         cfg.Metrics.Counter("service.jobs.failed"),
		mCanceled:       cfg.Metrics.Counter("service.jobs.canceled"),
		mRejected:       cfg.Metrics.Counter("service.jobs.rejected"),
		mCacheHits:      cfg.Metrics.Counter("service.cache.hits"),
		mCacheMisses:    cfg.Metrics.Counter("service.cache.misses"),
		mShardRemote:    cfg.Metrics.Counter("service.shard.remote"),
		mShardRetries:   cfg.Metrics.Counter("service.shard.dispatch_retries"),
		mShardFallbacks: cfg.Metrics.Counter("service.shard.local_fallbacks"),
		mJobMS:          cfg.Metrics.Histogram("service.job_ms"),
		mQueueMS:        cfg.Metrics.Histogram("service.queue_wait_ms"),
	}
	if len(cfg.ShardWorkers) > 0 {
		s.shard = newShardClient(cfg.ShardWorkers, cfg.ShardAttempts, cfg.ShardPoll, cfg.Logger, s.mShardRetries)
	}
	s.pool = newPool(s, cfg)
	s.scaleStop = make(chan struct{})
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.MaxWorkers > cfg.MinWorkers && cfg.ScaleInterval > 0 {
		s.wg.Add(1)
		go s.scaleLoop()
	}
	if cfg.Monitor != nil {
		mc := cfg.Monitor.withDefaults()
		eng, engErr := drift.NewEngine(mc.Rules)
		if engErr != nil {
			// The loop aborts on rulesErr before running any epoch; the
			// fallback engine only keeps status() safe to call.
			eng, _ = drift.NewEngine(drift.DefaultRules())
		}
		s.monitor = &monitorState{
			cfg:          mc,
			engine:       eng,
			rulesErr:     engErr,
			baselines:    make(map[int]*drift.Baseline),
			currentEpoch: -1,
			lastEpoch:    -1,
		}
		s.monitorDone = make(chan struct{})
		s.wg.Add(1)
		go s.monitorLoop()
	}
	return s
}

// Metrics exposes the server's registry (the /metrics source).
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// ErrQueueFull is returned by Submit when the queue has no room; HTTP
// maps it to 429 + Retry-After.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// ErrDraining is returned by Submit after Shutdown began; HTTP maps it
// to 503.
var ErrDraining = fmt.Errorf("service: server is shutting down")

// Submit validates and enqueues a job (or resolves it instantly from the
// result cache) and returns it. The returned Job must only be inspected
// through server methods; its Done channel closes when it finishes.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	norm, err := spec.normalize(s.cfg.Limits)
	if err != nil {
		return nil, fmt.Errorf("service: invalid spec: %w", err)
	}
	key := norm.cacheKey()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("j%06d", s.seq),
		Spec:      norm,
		key:       key,
		submitted: time.Now(),
		startedCh: make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.mSubmitted.Inc()
	if res, ok := s.cache.get(key); ok {
		// Deterministic hit: finish the job immediately with the cached
		// artifacts, never touching the queue.
		s.mCacheHits.Inc()
		job.state = StateDone
		job.cacheHit = true
		job.started = job.submitted
		job.finished = time.Now()
		job.res = res
		job.markStarted()
		close(job.done)
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.log.Info("job resolved from cache", "job", job.ID, "seed", norm.Seed, "sites", norm.Sites)
		return job, nil
	}
	job.state = StateQueued
	select {
	case s.queue <- job:
	default:
		s.seq-- // job was never admitted
		s.mRejected.Inc()
		s.log.Warn("job rejected: queue full", "queue_depth", s.cfg.QueueDepth)
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.log.Info("job queued", "job", job.ID, "seed", norm.Seed, "sites", norm.Sites,
		"fault_profile", norm.FaultProfile, "trace_sample", norm.TraceSample)
	return job, nil
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job: a queued job is marked canceled and skipped when
// popped, a running job has its context canceled. Canceling a finished
// job is a no-op. The second return is false when the ID is unknown.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled before start"
		j.finished = time.Now()
		s.mCanceled.Inc()
		j.markStarted()
		close(j.done)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		// runJob observes the context error and finishes the job.
	}
	return j, true
}

// Stats is a point-in-time view of the server for /healthz. Workers is
// the autoscaling pool's current size, inside [MinWorkers, MaxWorkers].
type Stats struct {
	Queued      int `json:"queued"`
	Running     int `json:"running"`
	Finished    int `json:"finished"`
	CacheSize   int `json:"cache_size"`
	Workers     int `json:"workers"`
	QueueCap    int `json:"queue_capacity"`
	MinWorkers  int `json:"min_workers"`
	MaxWorkers  int `json:"max_workers"`
	BusyWorkers int `json:"busy_workers"`
	ScaleEvents int `json:"scale_events"`
}

// Stats summarizes the server state.
func (s *Server) Stats() Stats {
	p := s.pool
	p.mu.Lock()
	cur, busy, scaled := p.cur, p.busy, p.eventsTotal
	p.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		CacheSize:   s.cache.len(),
		Workers:     cur,
		QueueCap:    s.cfg.QueueDepth,
		MinWorkers:  s.cfg.MinWorkers,
		MaxWorkers:  s.cfg.MaxWorkers,
		BusyWorkers: busy,
		ScaleEvents: scaled,
	}
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		default:
			st.Finished++
		}
	}
	return st
}

// worker drains the queue until Shutdown closes it or a scale-down hands
// it a quit token. Tokens are only consumed between jobs, so a shrink
// never interrupts a running measurement.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.pool.quit:
			s.pool.quitConsumed()
			return
		default:
		}
		select {
		case <-s.pool.quit:
			s.pool.quitConsumed()
			return
		case job, ok := <-s.queue:
			if !ok {
				return
			}
			s.pool.jobStarted()
			s.runJob(job)
			s.pool.jobFinished()
		}
	}
}

// runJob executes one queued job end to end: re-check the cache (an
// identical job may have finished while this one waited), run the
// measurement under a per-job context, render the artifacts, and publish
// the terminal state.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.state != StateQueued { // canceled while waiting
		s.mu.Unlock()
		return
	}
	if res, ok := s.cache.get(job.key); ok {
		s.mCacheHits.Inc()
		job.state = StateDone
		job.cacheHit = true
		job.started = time.Now()
		job.finished = job.started
		job.res = res
		job.markStarted()
		close(job.done)
		s.mu.Unlock()
		return
	}
	s.mCacheMisses.Inc()
	ctx, cancel := context.WithCancel(s.baseCtx)
	job.state = StateRunning
	job.started = time.Now()
	job.cancel = cancel
	job.markStarted()
	waitMS := float64(job.started.Sub(job.submitted)) / float64(time.Millisecond)
	s.mQueueMS.Observe(waitMS)
	s.mu.Unlock()
	s.pool.observeWait(waitMS)
	defer cancel()

	s.log.Info("job started", "job", job.ID, "queue_wait_ms", waitMS)
	res, err := s.execute(ctx, job.Spec)

	var durMS float64
	func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		job.finished = time.Now()
		job.cancel = nil
		durMS = float64(job.finished.Sub(job.started)) / float64(time.Millisecond)
		s.mJobMS.Observe(durMS)
		switch {
		case err == nil:
			job.state = StateDone
			job.res = res
			s.cache.put(job.key, res)
			s.mCompleted.Inc()
			if res.traceChrome != nil {
				s.traces = append([]traceEntry{{
					JobID:       job.ID,
					TraceCount:  res.traceCount,
					SpanCount:   res.spanCount,
					SampleEvery: job.Spec.TraceSample,
					FinishedAt:  job.finished,
					URL:         "/v1/jobs/" + job.ID + "/trace.json",
				}}, s.traces...)
				if len(s.traces) > traceRingSize {
					s.traces = s.traces[:traceRingSize]
				}
			}
			s.log.Info("job done", "job", job.ID, "duration_ms", durMS,
				"visits", res.summary.Visits, "trace_spans", res.spanCount)
		case ctx.Err() != nil:
			job.state = StateCanceled
			job.err = ctx.Err().Error()
			s.mCanceled.Inc()
			s.log.Warn("job canceled", "job", job.ID, "duration_ms", durMS)
		default:
			job.state = StateFailed
			job.err = err.Error()
			s.mFailed.Inc()
			s.log.Error("job failed", "job", job.ID, "duration_ms", durMS, "error", err.Error())
		}
		close(job.done)
	}()
	s.pool.observeJob(durMS)
}

// execute runs the measurement and renders every artifact to bytes. When
// the spec asks for tracing, a per-job tracer seeded from the spec rides
// the config through crawl and analysis, and the finished trace is
// rendered alongside the other artifacts (so cache hits replay the exact
// trace bytes too). Sharded specs route to the shard worker or the
// coordinator instead.
func (s *Server) execute(ctx context.Context, spec JobSpec) (*result, error) {
	switch {
	case spec.Shards > 1 && spec.Shard > 0:
		return s.executeShard(ctx, spec)
	case spec.Shards > 1:
		return s.executeCoordinator(ctx, spec)
	}
	runner := s.cfg.Runner
	if runner == nil {
		runner = webmeasure.Run
	}
	cfg := spec.config(s.reg)
	var tracer *trace.Tracer
	if spec.TraceSample > 0 {
		tracer = trace.New(trace.Options{
			Seed:        spec.Seed,
			SampleEvery: spec.TraceSample,
			Metrics:     s.reg,
		})
		cfg.Tracer = tracer
	}
	r, err := runner(ctx, cfg)
	if err != nil {
		return nil, err
	}
	var rep, js, csv bytes.Buffer
	r.WriteReport(&rep)
	if err := r.WriteJSON(&js); err != nil {
		return nil, fmt.Errorf("render json: %w", err)
	}
	if err := r.WriteCSV(&csv); err != nil {
		return nil, fmt.Errorf("render csv: %w", err)
	}
	res := &result{
		report:  rep.Bytes(),
		json:    js.Bytes(),
		csv:     csv.Bytes(),
		dataset: r.Dataset(),
		summary: r.Summary(),
	}
	if tracer != nil {
		var chrome, jsonl bytes.Buffer
		if err := tracer.WriteChromeTrace(&chrome); err != nil {
			return nil, fmt.Errorf("render trace: %w", err)
		}
		if err := tracer.WriteJSONL(&jsonl); err != nil {
			return nil, fmt.Errorf("render trace jsonl: %w", err)
		}
		res.traceChrome = chrome.Bytes()
		res.traceJSONL = jsonl.Bytes()
		res.traceCount = tracer.TraceCount()
		res.spanCount = tracer.SpanCount()
	}
	return res, nil
}

// executeShard runs one shard job: a shard-restricted measurement whose
// artifact is the encoded partial. The run uses a fresh registry and
// tracer — the partial carries both, and merging them into the shared
// registry is the coordinator's decision, not the worker's, so a local
// fallback never double-counts against a remote dispatch.
func (s *Server) executeShard(ctx context.Context, spec JobSpec) (*result, error) {
	runner := s.cfg.Runner
	if runner == nil {
		runner = webmeasure.Run
	}
	reg := metrics.New()
	cfg := spec.config(reg)
	var tracer *trace.Tracer
	if spec.TraceSample > 0 {
		tracer = trace.New(trace.Options{
			Seed:        spec.Seed,
			SampleEvery: spec.TraceSample,
			Metrics:     reg,
		})
		cfg.Tracer = tracer
	}
	r, err := runner(ctx, cfg)
	if err != nil {
		return nil, err
	}
	part, err := r.Partial()
	if err != nil {
		return nil, err
	}
	dump := reg.Dump()
	part.Metrics = &dump
	part.Traces = tracer.Export()
	wire, err := part.Encode()
	if err != nil {
		return nil, err
	}
	// Shard summaries report only crawl-level facts: a slice can hold zero
	// vetted pages, where the tree-derived means are undefined.
	cs := r.Analysis().CrawlSummary()
	return &result{
		partial: wire,
		dataset: r.Dataset(),
		summary: webmeasure.Summary{
			Sites:            cs.Sites,
			Pages:            cs.Pages,
			Visits:           cs.Visits,
			VettedPages:      cs.VettedPages,
			VettedShare:      cs.VettedShare,
			ExcludedPages:    cs.Vetting.Excluded(),
			ExcludedDegraded: cs.Vetting.ExcludedDegraded,
		},
	}, nil
}

// executeCoordinator fans one shard job per slice out — to the configured
// shard workers when present, in-process otherwise — then merges the
// partials: metrics dumps into the server registry, trace exports into
// one tracer, and the analysis partials into full Results whose rendered
// artifacts are byte-identical to an unsharded run of the same spec.
func (s *Server) executeCoordinator(ctx context.Context, spec JobSpec) (*result, error) {
	parts := make([]*core.Partial, spec.Shards)
	errs := make([]error, spec.Shards)
	var wg sync.WaitGroup
	for i := 1; i <= spec.Shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			parts[shard-1], errs[shard-1] = s.shardPartial(ctx, spec, shard)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, part := range parts {
		if part.Metrics != nil {
			if err := s.reg.Merge(*part.Metrics); err != nil {
				return nil, err
			}
		}
	}
	res, err := webmeasure.AssembleFromPartials(ctx, spec.config(s.reg), parts)
	if err != nil {
		return nil, err
	}
	var rep, js, csv bytes.Buffer
	res.WriteReport(&rep)
	if err := res.WriteJSON(&js); err != nil {
		return nil, fmt.Errorf("render json: %w", err)
	}
	if err := res.WriteCSV(&csv); err != nil {
		return nil, fmt.Errorf("render csv: %w", err)
	}
	out := &result{
		report:  rep.Bytes(),
		json:    js.Bytes(),
		csv:     csv.Bytes(),
		dataset: res.Dataset(),
		summary: res.Summary(),
	}
	if spec.TraceSample > 0 {
		merged := trace.New(trace.Options{Seed: spec.Seed, SampleEvery: spec.TraceSample})
		for _, part := range parts {
			if err := merged.Import(part.Traces); err != nil {
				return nil, err
			}
		}
		var chrome, jsonl bytes.Buffer
		if err := merged.WriteChromeTrace(&chrome); err != nil {
			return nil, fmt.Errorf("render trace: %w", err)
		}
		if err := merged.WriteJSONL(&jsonl); err != nil {
			return nil, fmt.Errorf("render trace jsonl: %w", err)
		}
		out.traceChrome = chrome.Bytes()
		out.traceJSONL = jsonl.Bytes()
		out.traceCount = merged.TraceCount()
		out.spanCount = merged.SpanCount()
	}
	return out, nil
}

// shardPartial obtains one shard's partial: result cache first, then the
// remote shard workers, then — when every dispatch attempt fails — an
// in-process run. Whatever produced the bytes, they land in the result
// cache under the shard job's own key, so a retried coordinator (or a
// second coordinator sharing slices) reuses them.
func (s *Server) shardPartial(ctx context.Context, spec JobSpec, shard int) (*core.Partial, error) {
	shardSpec := spec
	shardSpec.Shard = shard
	key := shardSpec.cacheKey()
	if res, ok := s.cacheGet(key); ok && res.partial != nil {
		s.mCacheHits.Inc()
		return core.DecodePartial(res.partial)
	}
	if s.shard != nil {
		wire, err := s.shard.fetchPartial(ctx, shardSpec)
		if err == nil {
			s.mShardRemote.Inc()
			s.cachePut(key, &result{partial: wire})
			return core.DecodePartial(wire)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		s.mShardFallbacks.Inc()
		s.log.Warn("shard dispatch failed, running locally", "shard", shard, "error", err.Error())
	}
	res, err := s.executeShard(ctx, shardSpec)
	if err != nil {
		return nil, err
	}
	s.cachePut(key, res)
	return core.DecodePartial(res.partial)
}

// cacheGet / cachePut are the locked cache accessors for paths that do
// not already hold the server mutex.
func (s *Server) cacheGet(key string) (*result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.get(key)
}

func (s *Server) cachePut(key string, res *result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.put(key, res)
}

// Shutdown stops intake, drains the queued and running jobs, and waits
// for the workers to exit. If ctx expires first, every in-flight job's
// context is canceled and Shutdown still waits for the (now fast) drain
// before returning the ctx error — no goroutine outlives the call.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.log.Info("server draining")
		// Freeze the pool before the queue closes: once it is, a scale
		// evaluation can neither spawn workers (racing wg.Wait below) nor
		// hand out quit tokens the drain no longer needs.
		s.pool.mu.Lock()
		s.pool.closed = true
		s.pool.mu.Unlock()
		close(s.scaleStop)
		close(s.queue)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-done
		// Queued jobs the workers never reached must still resolve.
		s.failAbandoned()
		return ctx.Err()
	}
}

// failAbandoned marks jobs that were still queued when a forced shutdown
// emptied the pool.
func (s *Server) failAbandoned() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.state == StateQueued {
			j.state = StateCanceled
			j.err = "server shut down before the job ran"
			j.finished = time.Now()
			s.mCanceled.Inc()
			j.markStarted()
			close(j.done)
		}
	}
}
