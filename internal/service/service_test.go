package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"webmeasure"
)

// tinySpec is the spec every fast test submits: a five-site universe
// crawled with two subpages per site.
func tinySpec(seed int64) JobSpec {
	return JobSpec{Seed: seed, Sites: 5, PagesPerSite: 2, Workers: 2}
}

// postJob submits a spec and decodes the job view.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (jobJSON, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return v, resp.StatusCode
}

// pollDone waits on the job's Done channel and then fetches the status
// endpoint once — no sleep polling, no timing sensitivity.
func pollDone(t *testing.T, s *Server, ts *httptest.Server, id string) jobJSON {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never finished", id)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if !v.State.terminal() {
		t.Fatalf("job %s done but status reports %q", id, v.State)
	}
	return v
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestSubmitPollFetchArtifacts is the happy path: submit → poll → fetch
// every artifact, and cross-check the service's result.json against the
// batch pipeline (cmd/analyze's LoadAndAnalyze) fed with the service's
// own dataset download — the two paths must agree byte for byte.
func TestSubmitPollFetchArtifacts(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec(7)
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job state = %q", v.State)
	}

	v = pollDone(t, s, ts, v.ID)
	if v.State != StateDone {
		t.Fatalf("job ended %q (err %q)", v.State, v.Error)
	}
	if v.Summary == nil || v.Summary.Sites == 0 {
		t.Fatalf("done job carries no summary: %+v", v)
	}

	code, rep := get(t, ts.URL+"/v1/jobs/"+v.ID+"/report")
	if code != 200 || !bytes.Contains(rep, []byte("Table 2")) {
		t.Fatalf("report fetch: code %d, %d bytes", code, len(rep))
	}
	code, csv := get(t, ts.URL+"/v1/jobs/"+v.ID+"/result.csv")
	if code != 200 || !bytes.Contains(csv, []byte("# table2_tree_overview.csv")) {
		t.Fatalf("csv fetch: code %d, missing section header", code)
	}
	code, js := get(t, ts.URL+"/v1/jobs/"+v.ID+"/result.json")
	if code != 200 || len(js) == 0 {
		t.Fatalf("json fetch: code %d, %d bytes", code, len(js))
	}
	code, jsonl := get(t, ts.URL+"/v1/jobs/"+v.ID+"/dataset.jsonl")
	if code != 200 || len(jsonl) == 0 {
		t.Fatalf("dataset fetch: code %d, %d bytes", code, len(jsonl))
	}

	// Batch-path cross-check: analyzing the downloaded dataset with the
	// same flags must reproduce the served result.json exactly.
	res, err := webmeasure.LoadAndAnalyze(bytes.NewReader(jsonl), webmeasure.Config{
		Seed: spec.Seed, Sites: spec.Sites, PagesPerSite: spec.PagesPerSite,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := res.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), js) {
		t.Fatalf("service result.json (%d bytes) differs from batch analysis (%d bytes)",
			len(js), want.Len())
	}
}

// TestCacheHitServesSameBytes submits the same spec twice: the second
// submission must resolve instantly from cache with identical artifact
// bytes, and the hit must show on /metrics.
func TestCacheHitServesSameBytes(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first, code := postJob(t, ts, tinySpec(11))
	if code != http.StatusAccepted {
		t.Fatalf("first submit code = %d", code)
	}
	first = pollDone(t, s, ts, first.ID)
	if first.State != StateDone {
		t.Fatalf("first job: %q (%s)", first.State, first.Error)
	}

	// Different worker count, same experiment: must still hit the cache.
	again := tinySpec(11)
	again.Workers = 7
	second, code := postJob(t, ts, again)
	if code != http.StatusOK {
		t.Fatalf("cache-hit submit code = %d, want 200", code)
	}
	if second.State != StateDone || !second.CacheHit {
		t.Fatalf("second job not a cache hit: %+v", second)
	}
	_, a := get(t, ts.URL+"/v1/jobs/"+first.ID+"/result.json")
	_, b := get(t, ts.URL+"/v1/jobs/"+second.ID+"/result.json")
	if !bytes.Equal(a, b) {
		t.Fatal("cache hit served different result.json bytes")
	}
	_, ra := get(t, ts.URL+"/v1/jobs/"+first.ID+"/report")
	_, rb := get(t, ts.URL+"/v1/jobs/"+second.ID+"/report")
	if !bytes.Equal(ra, rb) {
		t.Fatal("cache hit served different report bytes")
	}

	if hits := s.Metrics().Counter("service.cache.hits").Value(); hits != 1 {
		t.Fatalf("cache hit counter = %d, want 1", hits)
	}
	code, prom := get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics code = %d", code)
	}
	for _, want := range []string{
		"service_cache_hits 1",
		"service_jobs_submitted 2",
		"# TYPE service_job_ms histogram",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}
}

// blockingServer builds a server whose runner parks until release is
// closed (or the job context fires), so tests can hold the worker busy
// deterministically.
func blockingServer(t *testing.T, cfg Config, release <-chan struct{}) *Server {
	t.Helper()
	cfg.Runner = func(ctx context.Context, wcfg webmeasure.Config) (*webmeasure.Results, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
		}
		return webmeasure.Run(ctx, wcfg)
	}
	return New(cfg)
}

// TestQueueBackpressure fills the queue behind a parked worker and
// expects 429 + Retry-After for the overflow submission.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	s := blockingServer(t, Config{Workers: 1, QueueDepth: 1}, release)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running, code := postJob(t, ts, tinySpec(1)) // claimed by the worker
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 code = %d", code)
	}
	waitRunning(t, s, running.ID)
	if _, code = postJob(t, ts, tinySpec(2)); code != http.StatusAccepted { // fills the queue
		t.Fatalf("submit 2 code = %d", code)
	}

	body, err := json.Marshal(tinySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit code = %d, want 429", resp.StatusCode)
	}
	retryAfter := resp.Header.Get("Retry-After")
	if retryAfter == "" {
		t.Fatal("429 response missing Retry-After")
	}
	secs, err := strconv.Atoi(retryAfter)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", retryAfter, err)
	}
	if secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %d, want within [1, 60]", secs)
	}
	if rejected := s.Metrics().Counter("service.jobs.rejected").Value(); rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}
	close(release)
}

// waitRunning blocks on the job's Started channel until a worker picks it
// up, then asserts it is actually running (the blocking runner guarantees
// it cannot have finished).
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	select {
	case <-j.Started():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never started", id)
	}
	s.mu.Lock()
	st := j.state
	s.mu.Unlock()
	if st != StateRunning {
		t.Fatalf("job %s started but is %q, want %q", id, st, StateRunning)
	}
}

// TestCancelRunningJob cancels a job mid-execution via DELETE and checks
// the canceled state propagates to status and artifact routes.
func TestCancelRunningJob(t *testing.T) {
	release := make(chan struct{})
	s := blockingServer(t, Config{Workers: 1}, release)
	defer s.Shutdown(context.Background())
	defer close(release) // LIFO: release the runner before the drain waits
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, _ := postJob(t, ts, tinySpec(1))
	waitRunning(t, s, v.ID)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel code = %d", resp.StatusCode)
	}

	final := pollDone(t, s, ts, v.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel = %q", final.State)
	}
	if canceled := s.Metrics().Counter("service.jobs.canceled").Value(); canceled != 1 {
		t.Fatalf("canceled counter = %d, want 1", canceled)
	}
	code, _ := get(t, ts.URL+"/v1/jobs/"+v.ID+"/result.json")
	if code != http.StatusGone {
		t.Fatalf("artifact of canceled job = %d, want 410", code)
	}
}

// TestCancelQueuedJob cancels a job that never started.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	s := blockingServer(t, Config{Workers: 1, QueueDepth: 4}, release)
	defer s.Shutdown(context.Background())
	defer close(release) // LIFO: release the runner before the drain waits

	blocker, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(tinySpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if j, ok := s.Cancel(queued.ID); !ok || j != queued {
		t.Fatal("cancel of queued job failed")
	}
	select {
	case <-queued.Done():
	case <-time.After(time.Second):
		t.Fatal("canceled queued job did not resolve")
	}
	s.mu.Lock()
	st := queued.state
	s.mu.Unlock()
	if st != StateCanceled {
		t.Fatalf("queued job state = %q", st)
	}
	_ = blocker
}

// TestSubmitValidation rejects malformed and over-limit specs.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1, Limits: Limits{MaxSites: 10, MaxPagesPerSite: 5}})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"unknown field":   `{"sitez": 5}`,
		"over max sites":  `{"sites": 999}`,
		"over max pages":  `{"pages_per_site": 50}`,
		"unknown profile":       `{"profiles": ["NoSuchBrowser"]}`,
		"unknown fault profile": `{"fault_profile": "chaos"}`,
		"negative epoch":        `{"epoch": -1}`,
		"not json":              `sites=5`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400", name, resp.StatusCode)
		}
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/nope"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
}

// TestSpecCanonicalization: different spellings of the same experiment
// share one cache key; different experiments do not.
func TestSpecCanonicalization(t *testing.T) {
	limits := Limits{MaxSites: 2000, MaxPagesPerSite: 100}
	key := func(s JobSpec) string {
		t.Helper()
		n, err := s.normalize(limits)
		if err != nil {
			t.Fatal(err)
		}
		return n.cacheKey()
	}
	base := key(JobSpec{})
	if key(JobSpec{Seed: 1, Sites: 100, PagesPerSite: 10, Workers: 9}) != base {
		t.Error("defaulted spec and explicit defaults should share a key")
	}
	if key(JobSpec{Seed: 2}) == base {
		t.Error("different seed must change the key")
	}
	if key(JobSpec{Epoch: 1}) == base {
		t.Error("different epoch must change the key")
	}
	if key(JobSpec{Stateful: true}) == base {
		t.Error("stateful must change the key")
	}
	if key(JobSpec{Profiles: []string{"Old", "Sim1", "Sim2", "NoAction", "Headless"}}) != base {
		t.Error("explicit full profile set must equal the empty default")
	}
	a := key(JobSpec{Profiles: []string{"Sim2", "Sim1", "Sim1"}})
	b := key(JobSpec{Profiles: []string{"Sim1", "Sim2"}})
	if a != b {
		t.Error("profile order/duplicates must canonicalize away")
	}
	if a == base {
		t.Error("a two-profile subset must not share the full-set key")
	}
	if key(JobSpec{FaultProfile: "off"}) != base {
		t.Error(`fault_profile "off" must equal the empty default`)
	}
	if key(JobSpec{FaultProfile: "light"}) == base {
		t.Error("an active fault profile must change the key")
	}
}

// TestFaultProfileJob runs a job with fault injection enabled end to end:
// it must complete, and the vetting stage must report exclusions.
func TestFaultProfileJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec(7)
	spec.FaultProfile = "light"
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	v = pollDone(t, s, ts, v.ID)
	if v.State != StateDone {
		t.Fatalf("faulty job ended %q (err %q)", v.State, v.Error)
	}
	if v.Spec.FaultProfile != "light" {
		t.Errorf("spec echo lost the fault profile: %+v", v.Spec)
	}
	if v.Summary.ExcludedPages == 0 {
		t.Error("light faults produced no vetting exclusions")
	}
}

// TestHealthz reports queue stats.
func TestHealthz(t *testing.T) {
	s := New(Config{Workers: 3, QueueDepth: 5})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz code = %d", code)
	}
	var v struct {
		Status string `json:"status"`
		Stats  Stats  `json:"stats"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != "ok" || v.Stats.Workers != 3 || v.Stats.QueueCap != 5 {
		t.Fatalf("healthz = %+v", v)
	}
}

// TestShutdownDrains submits work, shuts down, and verifies every
// accepted job reached a terminal state and the workers exited.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		j, err := s.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, id := range ids {
		j, _ := s.Job(id)
		s.mu.Lock()
		st := j.state
		s.mu.Unlock()
		if st != StateDone {
			t.Errorf("job %s ended %q after drain", id, st)
		}
	}
	if _, err := s.Submit(tinySpec(9)); err != ErrDraining {
		t.Errorf("submit after shutdown = %v, want ErrDraining", err)
	}
}

// TestShutdownDeadlineCancelsRunning forces the drain deadline and
// expects the running job to be canceled rather than leaked.
func TestShutdownDeadlineCancelsRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := blockingServer(t, Config{Workers: 1}, release)
	j, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, j.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced shutdown = %v, want deadline exceeded", err)
	}
	select {
	case <-j.Done():
	case <-time.After(time.Second):
		t.Fatal("running job did not resolve after forced shutdown")
	}
	s.mu.Lock()
	st := j.state
	s.mu.Unlock()
	if st != StateCanceled {
		t.Fatalf("job after forced shutdown = %q", st)
	}
}

// TestJobListOrder lists jobs in submission order.
func TestJobListOrder(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var want []string
	for seed := int64(1); seed <= 3; seed++ {
		j, err := s.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID)
	}
	code, body := get(t, ts.URL+"/v1/jobs")
	if code != 200 {
		t.Fatalf("list code = %d", code)
	}
	var v struct {
		Jobs []jobJSON `json:"jobs"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if len(v.Jobs) != len(want) {
		t.Fatalf("list has %d jobs, want %d", len(v.Jobs), len(want))
	}
	for i, j := range v.Jobs {
		if j.ID != want[i] {
			t.Fatalf("list order %v, want %v", v.Jobs, want)
		}
	}
}

// TestLRUEviction keeps the cache bounded.
func TestLRUEviction(t *testing.T) {
	c := newResultCache(2)
	r1, r2, r3 := &result{}, &result{}, &result{}
	c.put("a", r1)
	c.put("b", r2)
	if _, ok := c.get("a"); !ok { // refresh a → b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if c.len() != 2 {
		t.Fatalf("cache len = %d, want 2", c.len())
	}
	if got, _ := c.get("c"); got != r3 {
		t.Fatal("c lookup wrong")
	}
}
