package service

import (
	"math/rand"
	"testing"
)

// fuzzProfiles is the canonical Table 1 order the normalizer re-imposes.
var fuzzProfiles = []string{"Old", "Sim1", "Sim2", "NoAction", "Headless"}

// FuzzSpecCanonical pins the service's spec identity: the canonicalized
// cache key must be invariant under every spelling of the same experiment
// — profile reordering and duplication, "off" vs "" fault profiles,
// "jsonl" vs "" dataset formats, and any analysis worker count (workers
// never change the result bytes). It also pins that normalization is
// idempotent and that a valid spec never changes meaning when
// re-canonicalized.
func FuzzSpecCanonical(f *testing.F) {
	f.Add(int64(1), 10, 4, 2, 0, false, uint8(0b11111), uint8(0), 0, 0, int64(0), false, int64(7))
	f.Add(int64(42), 50, 10, 3, 2, true, uint8(0b00101), uint8(1), 4, 2, int64(9), true, int64(3))
	f.Add(int64(-3), 0, 0, 0, 0, false, uint8(0), uint8(2), 1, 1, int64(0), false, int64(1))
	f.Add(int64(7), 2000, 100, 1, 1, true, uint8(0b10000), uint8(3), 16, 0, int64(5), true, int64(99))

	f.Fuzz(func(t *testing.T, seed int64, sites, pages, instances, epoch int,
		stateful bool, profileMask, faultIdx uint8, shards, shard int, shardSeed int64,
		colFormat bool, permSeed int64) {

		limits := Limits{MaxSites: 2000, MaxPagesPerSite: 100, MaxShards: 16}

		var profiles []string
		for i, name := range fuzzProfiles {
			if profileMask&(1<<i) != 0 {
				profiles = append(profiles, name)
			}
		}
		faultNames := []string{"", "off", "light", "heavy"}
		fault := faultNames[int(faultIdx)%len(faultNames)]
		format := ""
		if colFormat {
			format = "col"
		}
		specA := JobSpec{
			Seed: seed, Sites: sites, PagesPerSite: pages, Instances: instances,
			Epoch: epoch, Stateful: stateful, Profiles: profiles,
			FaultProfile: fault, Shards: shards, Shard: shard, ShardSeed: shardSeed,
			DatasetFormat: format, Workers: 2, TraceSample: 1,
		}

		// specB means the identical experiment spelled differently:
		// shuffled and duplicated profiles, the alternate spelling of the
		// default fault/format, and a different analysis worker count.
		specB := specA
		if len(profiles) > 0 {
			shuffled := append([]string(nil), profiles...)
			rand.New(rand.NewSource(permSeed)).Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			specB.Profiles = append(shuffled, shuffled[0])
		}
		switch fault {
		case "":
			specB.FaultProfile = "off"
		case "off":
			specB.FaultProfile = ""
		}
		if format == "" {
			specB.DatasetFormat = "jsonl"
		}
		specB.Workers = specA.Workers + 7

		normA, keyA, errA := specA.Canonical(limits)
		normB, keyB, errB := specB.Canonical(limits)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("validity disagrees across spellings: errA=%v errB=%v", errA, errB)
		}
		if errA != nil {
			return
		}
		if keyA != keyB {
			t.Fatalf("cache key differs across spellings of one experiment:\nA: %s\nB: %s", keyA, keyB)
		}
		// Idempotence: canonicalizing a canonical spec is the identity.
		norm2, key2, err := normA.Canonical(limits)
		if err != nil {
			t.Fatalf("re-canonicalizing a valid spec failed: %v", err)
		}
		if key2 != keyA {
			t.Fatalf("canonicalization not idempotent:\nfirst:  %s\nsecond: %s", keyA, key2)
		}
		if len(norm2.Profiles) != len(normB.Profiles) {
			t.Fatalf("profile sets diverged: %v vs %v", norm2.Profiles, normB.Profiles)
		}
	})
}
