package service

import "container/list"

// resultCache is a plain LRU over canonical spec keys. The experiment is
// deterministic for a fixed spec (same seed → same bytes, the repo's
// golden test), so a hit is a correctness-preserving free answer: the
// cached artifacts are exactly what a re-run would produce. Not
// concurrency-safe on its own; the Server serializes access under its
// mutex.
type resultCache struct {
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	res *result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached result for key and refreshes its recency.
func (c *resultCache) get(key string) (*result, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a result, evicting the least recently used entry past cap.
func (c *resultCache) put(key string, res *result) {
	if c == nil || c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	return c.order.Len()
}
