package service

import (
	"bytes"
	"context"
	"sync"
	"testing"
)

// TestConcurrentSubmissionsRace hammers the server from many goroutines
// with a mix of identical and distinct specs while jobs execute, then
// drains. Run under -race (tier2 does) this exercises the submit path,
// the cache, worker state transitions, and shutdown for data races; it
// also checks that every job sharing a spec ends with identical bytes.
func TestConcurrentSubmissionsRace(t *testing.T) {
	goroutines, perG := 8, 6
	if testing.Short() {
		goroutines, perG = 4, 3
	}
	s := New(Config{Workers: 4, QueueDepth: goroutines*perG + 1, CacheSize: 8})

	var mu sync.Mutex
	jobs := make([]*Job, 0, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Three distinct experiments (seeds 1..3) submitted over
				// and over from every goroutine: heavy cache contention.
				spec := tinySpec(int64(1 + (g+i)%3))
				j, err := s.Submit(spec)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				mu.Lock()
				jobs = append(jobs, j)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	bySeed := map[int64][]byte{}
	for _, j := range jobs {
		<-j.Done()
		s.mu.Lock()
		st, res := j.state, j.res
		s.mu.Unlock()
		if st != StateDone {
			t.Fatalf("job %s (seed %d) ended %q: %s", j.ID, j.Spec.Seed, st, j.err)
		}
		if prev, ok := bySeed[j.Spec.Seed]; ok {
			if !bytes.Equal(prev, res.json) {
				t.Fatalf("seed %d produced differing result.json bytes across jobs", j.Spec.Seed)
			}
		} else {
			bySeed[j.Spec.Seed] = res.json
		}
	}
	hits := s.Metrics().Counter("service.cache.hits").Value()
	misses := s.Metrics().Counter("service.cache.misses").Value()
	if hits+misses == 0 || hits == 0 {
		t.Fatalf("expected cache traffic with duplicate specs (hits=%d misses=%d)", hits, misses)
	}
}
