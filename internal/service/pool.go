package service

// The autoscaling worker pool: the Server's job executors are no longer a
// fixed set but a pool that grows toward Config.MaxWorkers under backlog
// or latency pressure and shrinks toward Config.MinWorkers when idle. The
// policy itself lives in the scaler package as a pure decision function;
// this file is the plumbing — observing the pool, applying verdicts by
// spawning workers or handing out quit tokens, and publishing the
// workers_current gauge, scale_events_total counters, scale-event spans,
// and the /debug/scale listing.
//
// Scale-down is cooperative: a quit token sits in a buffered channel
// until an idle worker picks it up between jobs, so a running measurement
// is never interrupted by a shrink. A later scale-up first cancels
// pending tokens before spawning, so the logical pool size (what the
// decision function sees) and the goroutine count converge without ever
// overshooting.

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"webmeasure/internal/metrics"
	"webmeasure/internal/service/scaler"
)

// ringSize is the recent-sample window for queue waits and job durations
// — the "recent p95" the scaler sees and the drain rate behind 429
// Retry-After. 128 samples is a few seconds of history under load.
const ringSize = 128

// WaitWindowMS ages queue-wait samples out of the "recent p95": without
// it, the last waits observed during a burst would pin the p95 high long
// after arrivals stopped, and an idle pool could never scale down. The
// loadgen simulator uses the same window so its scale-event sequences
// match the service's behavior.
const WaitWindowMS = 5000

// maxScaleEvents bounds the /debug/scale listing on a long-running
// server; the totals keep counting past it.
const maxScaleEvents = 512

// ring is a fixed-capacity sample window with per-sample timestamps.
type ring struct {
	buf [ringSize]float64
	at  [ringSize]int64 // sample time, pool milliseconds
	n   int             // samples ever added
}

func (r *ring) add(v float64, atMS int64) {
	r.buf[r.n%ringSize] = v
	r.at[r.n%ringSize] = atMS
	r.n++
}

// size returns how many samples the window currently holds.
func (r *ring) size() int {
	if r.n < ringSize {
		return r.n
	}
	return ringSize
}

// p95Since estimates the 95th percentile over samples no older than
// windowMS (0 when none qualify). Samples stamped after nowMS — a test's
// fabricated clock lagging the wall — count as current.
func (r *ring) p95Since(nowMS, windowMS int64) float64 {
	n := r.size()
	s := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if nowMS-r.at[i] <= windowMS {
			s = append(s, r.buf[i])
		}
	}
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	idx := int(math.Ceil(0.95*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// mean returns the window's mean (0 when empty).
func (r *ring) mean() float64 {
	n := r.size()
	if n == 0 {
		return 0
	}
	var sum float64
	for _, v := range r.buf[:n] {
		sum += v
	}
	return sum / float64(n)
}

// pool is the Server's autoscaling worker pool state. It has its own
// mutex, never held together with Server.mu, so the hot job path and the
// supervisor never contend on one lock.
type pool struct {
	s      *Server
	policy scaler.Config
	start  time.Time

	mu          sync.Mutex
	closed      bool // drain began: apply nothing, spawn nothing
	cur         int  // logical size: live workers minus pending quits
	busy        int  // workers mid-job right now
	lastScaleMS int64
	lowSinceMS  int64
	evalSeq     int
	eventsTotal int
	events      []scaler.Event
	waits       ring // recent queue-wait samples (ms)
	jobs        ring // recent job durations (ms)

	quit        chan struct{}
	pendingQuit int

	gWorkers *metrics.Gauge
	cUp      *metrics.Counter
	cDown    *metrics.Counter
}

func newPool(s *Server, cfg Config) *pool {
	p := &pool{
		s:           s,
		policy:      cfg.Scaler,
		start:       time.Now(),
		cur:         cfg.Workers,
		lastScaleMS: -1,
		lowSinceMS:  -1,
		quit:        make(chan struct{}, 2*cfg.MaxWorkers+16),
		gWorkers:    cfg.Metrics.Gauge("service.workers_current"),
		cUp:         cfg.Metrics.Counter(metrics.Labeled("service.scale_events.total", "dir", "up")),
		cDown:       cfg.Metrics.Counter(metrics.Labeled("service.scale_events.total", "dir", "down")),
	}
	p.gWorkers.Set(int64(p.cur))
	return p
}

// nowMS is the supervisor's clock: wall milliseconds since the pool
// started. Tests and the loadgen harness bypass it and feed evaluateScale
// their own (simulated) clock.
func (p *pool) nowMS() int64 { return time.Since(p.start).Milliseconds() }

func (p *pool) jobStarted() {
	p.mu.Lock()
	p.busy++
	p.mu.Unlock()
}

func (p *pool) jobFinished() {
	p.mu.Lock()
	p.busy--
	p.mu.Unlock()
}

// observeWait records one job's queue wait into the recent window.
func (p *pool) observeWait(ms float64) {
	now := p.nowMS()
	p.mu.Lock()
	p.waits.add(ms, now)
	p.mu.Unlock()
}

// observeJob records one finished job's duration into the recent window.
func (p *pool) observeJob(ms float64) {
	now := p.nowMS()
	p.mu.Lock()
	p.jobs.add(ms, now)
	p.mu.Unlock()
}

// quitConsumed is called by a worker that picked up a quit token and is
// about to exit.
func (p *pool) quitConsumed() {
	p.mu.Lock()
	p.pendingQuit--
	p.mu.Unlock()
}

// snapshotEvents copies the recent applied scale events (oldest first)
// and the lifetime total.
func (p *pool) snapshotEvents() ([]scaler.Event, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]scaler.Event, len(p.events))
	copy(out, p.events)
	return out, p.eventsTotal
}

// evaluateScale runs one scaling evaluation at nowMS (any millisecond
// clock: the supervisor's wall clock or a harness's simulated one),
// applies the verdict, and returns the decision. Safe to call
// concurrently with submissions and job execution.
func (s *Server) evaluateScale(nowMS int64) scaler.Decision {
	p := s.pool
	p.mu.Lock()
	if p.closed {
		// Shutdown owns the pool now: spawning a worker here could race
		// the drain's WaitGroup.Wait (Add-after-Wait). Hold forever.
		d := scaler.Decision{Verdict: scaler.Hold, Target: p.cur, Reason: "draining"}
		p.mu.Unlock()
		return d
	}
	in := scaler.Inputs{
		NowMS:                nowMS,
		QueueDepth:           len(s.queue),
		BusyWorkers:          p.busy,
		CurrentWorkers:       p.cur,
		RecentP95QueueWaitMS: p.waits.p95Since(nowMS, WaitWindowMS),
		LastScaleMS:          p.lastScaleMS,
	}
	// Maintain the flap damper's window: LowLoadSince survives only while
	// the low-load condition holds continuously.
	if scaler.LowLoad(p.policy, in) {
		if p.lowSinceMS < 0 {
			p.lowSinceMS = nowMS
		}
	} else {
		p.lowSinceMS = -1
	}
	in.LowLoadSinceMS = p.lowSinceMS

	d := scaler.Decide(p.policy, in)
	if d.Target != p.cur {
		p.applyLocked(d, in)
	}
	p.mu.Unlock()
	return d
}

// applyLocked moves the pool to the decision's target. Callers hold p.mu.
func (p *pool) applyLocked(d scaler.Decision, in scaler.Inputs) {
	from, to := p.cur, d.Target
	if to > from {
		delta := to - from
		// Cancel pending quit tokens before spawning: a worker that was
		// told to exit but hasn't yet is cheaper than a fresh goroutine.
		for delta > 0 && p.pendingQuit > 0 {
			select {
			case <-p.quit:
				p.pendingQuit--
				delta--
			default:
				// Token already claimed by a worker that is mid-exit;
				// spawn a replacement instead.
				delta--
				p.pendingQuit--
				p.s.wg.Add(1)
				go p.s.worker()
			}
		}
		for i := 0; i < delta; i++ {
			p.s.wg.Add(1)
			go p.s.worker()
		}
		p.cUp.Inc()
	} else {
		for i := 0; i < from-to; i++ {
			select {
			case p.quit <- struct{}{}:
				p.pendingQuit++
			default:
				// Channel full: more tokens outstanding than workers could
				// ever consume; dropping one keeps cur honest anyway.
			}
		}
		p.cDown.Inc()
	}
	p.cur = to
	p.gWorkers.Set(int64(to))
	p.lastScaleMS = in.NowMS

	ev := scaler.Event{
		AtMS:           in.NowMS,
		From:           from,
		To:             to,
		Reason:         d.Reason,
		QueueDepth:     in.QueueDepth,
		P95QueueWaitMS: in.RecentP95QueueWaitMS,
	}
	p.eventsTotal++
	p.events = append(p.events, ev)
	if len(p.events) > maxScaleEvents {
		p.events = p.events[len(p.events)-maxScaleEvents:]
	}
	p.evalSeq++
	if tracer := p.s.cfg.Tracer; tracer != nil {
		startUS := in.NowMS * 1000
		span := tracer.Trace("scaler", "pool").Span(nil, "scale", strconv.Itoa(p.evalSeq), startUS)
		span.SetAttr("verdict", string(d.Verdict)).
			SetAttrInt("from", from).
			SetAttrInt("to", to).
			SetAttrInt("queue_depth", in.QueueDepth).
			SetAttrFloat("p95_queue_wait_ms", in.RecentP95QueueWaitMS).
			SetAttr("reason", d.Reason)
		span.End(startUS)
	}
	p.s.log.Info("scale event", "verdict", string(d.Verdict), "from", from, "to", to,
		"queue_depth", in.QueueDepth, "p95_queue_wait_ms", in.RecentP95QueueWaitMS, "reason", d.Reason)
}

// scaleLoop is the wall-clock supervisor: evaluate every ScaleInterval
// until shutdown. Only started when the bounds leave room to scale.
func (s *Server) scaleLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ScaleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.scaleStop:
			return
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.evaluateScale(s.pool.nowMS())
		}
	}
}

// retryAfterSeconds estimates when the full queue will have room again,
// from the current drain rate: the pool completes busy/meanJobMS jobs per
// millisecond, so the next slot opens in about meanJobMS/busy. Clamped to
// [1s, 60s]; with no completed jobs yet there is no rate, so 1s.
func (s *Server) retryAfterSeconds() int {
	p := s.pool
	p.mu.Lock()
	meanMS := p.jobs.mean()
	busy := p.busy
	p.mu.Unlock()
	if meanMS <= 0 {
		return 1
	}
	if busy < 1 {
		busy = 1
	}
	secs := int(math.Ceil(meanMS / float64(busy) / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
