package service

// shardClient is the coordinator's dispatcher: it submits a shard job to
// a peer server over the same HTTP API human clients use (POST /v1/jobs,
// poll GET /v1/jobs/{id}, download partial.json), so the job-spec, queue,
// and result-cache machinery double as the distribution wire protocol. A
// worker that refuses, dies, or fails the job costs one attempt; attempts
// rotate round-robin through the worker list so a single dead worker
// cannot absorb every retry for its shards.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"webmeasure/internal/metrics"
)

type shardClient struct {
	workers  []string
	attempts int
	poll     time.Duration
	client   *http.Client
	log      *slog.Logger
	mRetries *metrics.Counter
}

func newShardClient(workers []string, attempts int, poll time.Duration, log *slog.Logger, retries *metrics.Counter) *shardClient {
	if attempts > len(workers) {
		attempts = len(workers)
	}
	if attempts < 1 {
		attempts = 1
	}
	return &shardClient{
		workers:  workers,
		attempts: attempts,
		poll:     poll,
		client:   &http.Client{Timeout: 30 * time.Second},
		log:      log,
		mRetries: retries,
	}
}

// fetchPartial runs the shard job on a remote worker and returns the
// encoded partial. Worker selection starts at the shard's home worker
// (shard modulo worker count, spreading a coordinator's slices evenly)
// and rotates on every retry.
func (c *shardClient) fetchPartial(ctx context.Context, spec JobSpec) ([]byte, error) {
	var lastErr error
	for a := 0; a < c.attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		worker := c.workers[(spec.Shard-1+a)%len(c.workers)]
		wire, err := c.tryWorker(ctx, worker, spec)
		if err == nil {
			return wire, nil
		}
		lastErr = err
		if a+1 < c.attempts {
			c.mRetries.Inc()
			c.log.Warn("shard worker failed, retrying on next",
				"shard", spec.Shard, "worker", worker, "error", err.Error())
		}
	}
	return nil, fmt.Errorf("service: shard %d failed on %d worker(s): %w", spec.Shard, c.attempts, lastErr)
}

// tryWorker drives one worker through the full job lifecycle.
func (c *shardClient) tryWorker(ctx context.Context, worker string, spec JobSpec) ([]byte, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("marshal shard spec: %w", err)
	}
	var submitted struct {
		ID    string `json:"id"`
		State State  `json:"state"`
		Error string `json:"error"`
	}
	if err := c.do(ctx, http.MethodPost, worker+"/v1/jobs", body, &submitted); err != nil {
		return nil, err
	}
	for !submitted.State.terminal() {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(c.poll):
		}
		if err := c.do(ctx, http.MethodGet, worker+"/v1/jobs/"+submitted.ID, nil, &submitted); err != nil {
			return nil, err
		}
	}
	if submitted.State != StateDone {
		return nil, fmt.Errorf("worker %s: shard job %s %s: %s", worker, submitted.ID, submitted.State, submitted.Error)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/jobs/"+submitted.ID+"/partial.json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("worker %s: partial.json: HTTP %d", worker, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 256<<20))
}

// do performs one JSON request/response exchange.
func (c *shardClient) do(ctx context.Context, method, url string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: HTTP %d: %s", method, url, resp.StatusCode, truncate(raw, 200))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("%s %s: parse response: %w", method, url, err)
		}
	}
	return nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "…"
}
