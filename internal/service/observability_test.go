package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"webmeasure/internal/trace"
)

// syncBuffer is a goroutine-safe bytes.Buffer: job-lifecycle records are
// written from worker goroutines while the test reads from its own.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestTracedJobEndToEnd runs a job with tracing on and walks every trace
// surface: the artifact links, the Chrome trace-event JSON, the JSONL
// export, the /debug/traces ring, the 404 for untraced jobs, and the
// job-lifecycle log records.
func TestTracedJobEndToEnd(t *testing.T) {
	var logBuf syncBuffer
	logger, err := trace.NewLogger(&logBuf, "info", false)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Logger: logger})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec(7)
	spec.TraceSample = 1
	v, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	v = pollDone(t, s, ts, v.ID)
	if v.State != StateDone {
		t.Fatalf("traced job ended %q (err %q)", v.State, v.Error)
	}
	if v.TraceCount == 0 || v.SpanCount == 0 {
		t.Fatalf("traced job reports %d traces / %d spans", v.TraceCount, v.SpanCount)
	}
	if v.Artifacts["trace"] == "" || v.Artifacts["trace_jsonl"] == "" {
		t.Fatalf("traced job missing trace artifacts: %v", v.Artifacts)
	}

	// The Chrome export must be loadable trace-event JSON covering the
	// crawl and analysis stages of the pipeline.
	code, chrome := get(t, ts.URL+v.Artifacts["trace"])
	if code != 200 {
		t.Fatalf("trace.json code = %d", code)
	}
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &tf); err != nil {
		t.Fatalf("trace.json does not parse: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" || len(tf.TraceEvents) == 0 {
		t.Fatalf("trace.json shape: unit %q, %d events", tf.DisplayTimeUnit, len(tf.TraceEvents))
	}
	names := map[string]bool{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "" {
			t.Fatalf("event %q missing ph", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"crawl.visit", "crawl.fetch", "analyze.vet", "analyze.build", "analyze.compare", "treediff.intern", "treediff.fill"} {
		if !names[want] {
			t.Errorf("trace.json has no %q span", want)
		}
	}

	// The JSONL export is one valid span object per line.
	code, jsonl := get(t, ts.URL+v.Artifacts["trace_jsonl"])
	if code != 200 || len(jsonl) == 0 {
		t.Fatalf("trace.jsonl: code %d, %d bytes", code, len(jsonl))
	}
	lines := strings.Split(strings.TrimRight(string(jsonl), "\n"), "\n")
	if len(lines) != v.SpanCount {
		t.Errorf("trace.jsonl has %d lines, job reports %d spans", len(lines), v.SpanCount)
	}
	for _, line := range lines {
		var rec struct {
			Trace string `json:"trace"`
			Span  string `json:"span"`
			Name  string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace.jsonl line does not parse: %v: %s", err, line)
		}
		if rec.Trace == "" || rec.Span == "" || rec.Name == "" {
			t.Fatalf("trace.jsonl record missing ids: %s", line)
		}
	}

	// /debug/traces lists the job, newest first, and serves the same
	// bytes by job ID.
	code, dbg := get(t, ts.URL+"/debug/traces")
	if code != 200 {
		t.Fatalf("/debug/traces code = %d", code)
	}
	var ring struct {
		Traces []traceEntry `json:"traces"`
	}
	if err := json.Unmarshal(dbg, &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Traces) != 1 || ring.Traces[0].JobID != v.ID || ring.Traces[0].SpanCount != v.SpanCount {
		t.Fatalf("/debug/traces = %+v, want job %s with %d spans", ring.Traces, v.ID, v.SpanCount)
	}
	code, byID := get(t, ts.URL+"/debug/traces/"+v.ID)
	if code != 200 || !bytes.Equal(byID, chrome) {
		t.Fatalf("/debug/traces/%s: code %d, bytes equal %v", v.ID, code, bytes.Equal(byID, chrome))
	}

	// A job without tracing answers 404 on the trace routes and carries
	// no trace artifact link.
	plain, _ := postJob(t, ts, tinySpec(8))
	plain = pollDone(t, s, ts, plain.ID)
	if plain.Artifacts["trace"] != "" {
		t.Fatalf("untraced job advertises a trace artifact: %v", plain.Artifacts)
	}
	if code, _ := get(t, ts.URL+"/v1/jobs/"+plain.ID+"/trace.json"); code != http.StatusNotFound {
		t.Fatalf("untraced trace.json code = %d, want 404", code)
	}

	// Resubmitting the traced spec is a cache hit that replays the exact
	// trace bytes.
	again, code := postJob(t, ts, spec)
	if code != http.StatusOK || !again.CacheHit {
		t.Fatalf("traced resubmit: code %d, cache_hit %v", code, again.CacheHit)
	}
	_, chrome2 := get(t, ts.URL+"/v1/jobs/"+again.ID+"/trace.json")
	if !bytes.Equal(chrome, chrome2) {
		t.Fatal("cache hit served different trace.json bytes")
	}

	logs := logBuf.String()
	for _, want := range []string{`msg="job queued"`, `msg="job started"`, `msg="job done"`, "job=" + v.ID, "trace_sample=1"} {
		if !strings.Contains(logs, want) {
			t.Errorf("job log missing %q:\n%s", want, logs)
		}
	}
}

// TestTraceSampleInCacheKey: tracing changes what the job produces, so it
// must split the cache key; sampling rates are distinct experiments too.
func TestTraceSampleInCacheKey(t *testing.T) {
	limits := Limits{MaxSites: 2000, MaxPagesPerSite: 100}
	key := func(s JobSpec) string {
		t.Helper()
		n, err := s.normalize(limits)
		if err != nil {
			t.Fatal(err)
		}
		return n.cacheKey()
	}
	base := key(JobSpec{})
	if key(JobSpec{TraceSample: 1}) == base {
		t.Error("trace_sample=1 must change the cache key")
	}
	if key(JobSpec{TraceSample: 1}) == key(JobSpec{TraceSample: 100}) {
		t.Error("different sampling rates must not share a key")
	}
	if key(JobSpec{TraceSample: -3}) != base {
		t.Error("negative trace_sample must normalize to untraced")
	}
}

// promLineRe matches one exposition sample: name, optional label set,
// value. Label pairs are validated separately.
var (
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$`)
)

// TestMetricsExpositionLint scrapes /metrics after a traced, fault-heavy
// job and lints the exposition text the way promtool's check does: the
// versioned Content-Type, a HELP and a TYPE header before every family's
// samples, valid metric and label names, parseable values, and no
// duplicate series.
func TestMetricsExpositionLint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := tinySpec(7)
	spec.TraceSample = 1
	spec.FaultProfile = "light"
	v, _ := postJob(t, ts, spec)
	if v = pollDone(t, s, ts, v.ID); v.State != StateDone {
		t.Fatalf("job ended %q (%s)", v.State, v.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", got)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()

	helped := map[string]bool{}
	typed := map[string]bool{}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			fam, help, _ := strings.Cut(rest, " ")
			if help == "" {
				t.Errorf("HELP without text: %q", line)
			}
			if helped[fam] {
				t.Errorf("duplicate HELP for %s", fam)
			}
			helped[fam] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			fam, kind := fields[2], fields[3]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("family %s has unknown type %q", fam, kind)
			}
			if typed[fam] {
				t.Errorf("duplicate TYPE for %s", fam)
			}
			if !helped[fam] {
				t.Errorf("family %s: TYPE precedes HELP", fam)
			}
			typed[fam] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment line: %q", line)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("unparseable sample line: %q", line)
			}
			name, labels, value := m[1], m[2], m[3]
			if labels != "" {
				for _, pair := range strings.Split(labels[1:len(labels)-1], ",") {
					if !promLabelRe.MatchString(pair) {
						t.Errorf("invalid label pair %q in %q", pair, line)
					}
				}
			}
			// _bucket/_sum/_count ride their histogram family's header.
			fam := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if b := strings.TrimSuffix(name, suffix); b != name && typed[b] {
					fam = b
					break
				}
			}
			if !typed[fam] || !helped[fam] {
				t.Errorf("series %s has no preceding HELP+TYPE header", name)
			}
			series := name + labels
			if seen[series] {
				t.Errorf("duplicate series %s", series)
			}
			seen[series] = true
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("series %s value %q does not parse: %v", series, value, err)
			}
		}
	}

	// The job must have populated the labeled families this PR adds.
	for _, want := range []string{
		`faults_injected_total{kind=`,
		`crawl_retries_total{kind=`,
		`crawl_visit_ms_bucket{profile=`,
		`trace_spans_total{stage="crawl.fetch"}`,
		`trace_span_us_count{stage="analyze.compare"}`,
		// Go runtime gauges, sampled at scrape time by handleMetrics.
		`go_goroutines`,
		`go_heap_inuse_bytes`,
		`go_gc_pause_p95_ms`,
		`process_uptime_seconds`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s:\n%s", want, body)
		}
	}
}
