package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"webmeasure/internal/service/scaler"
)

// scaleTestConfig is the pool shape the autoscaling tests share: room to
// grow 1→4, supervisor disabled so each test drives evaluateScale on its
// own fabricated clock.
func scaleTestConfig() Config {
	return Config{
		Workers:       1,
		MinWorkers:    1,
		MaxWorkers:    4,
		QueueDepth:    16,
		ScaleInterval: -1,
	}
}

// poolSize reads the pool's logical size under its lock.
func poolSize(s *Server) int {
	s.pool.mu.Lock()
	defer s.pool.mu.Unlock()
	return s.pool.cur
}

// TestAutoscalePoolGrowsUnderBacklog parks the single worker, stacks a
// backlog, and checks one evaluation grows the pool — and that the new
// workers are real: they drain the backlog while the first stays parked.
func TestAutoscalePoolGrowsUnderBacklog(t *testing.T) {
	release := make(chan struct{})
	s := blockingServer(t, scaleTestConfig(), release)
	defer s.Shutdown(context.Background())
	defer close(release)

	first, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-first.Started():
	case <-time.After(10 * time.Second):
		t.Fatal("first job never claimed")
	}
	backlog := make([]*Job, 0, 6)
	for seed := int64(2); seed < 8; seed++ {
		j, err := s.Submit(tinySpec(seed))
		if err != nil {
			t.Fatal(err)
		}
		backlog = append(backlog, j)
	}

	d := s.evaluateScale(1000)
	if d.Verdict != scaler.Up {
		t.Fatalf("decision = %+v, want up", d)
	}
	if got := poolSize(s); got != d.Target || got <= 1 {
		t.Fatalf("pool size = %d after up decision to %d", got, d.Target)
	}
	if g := s.Metrics().Gauge("service.workers_current").Value(); g != int64(d.Target) {
		t.Fatalf("workers_current gauge = %d, want %d", g, d.Target)
	}

	// The spawned workers must actually pick up the queued jobs even
	// though the first worker is still parked on the blocking runner.
	// (They park too — started is enough.)
	started := 0
	for _, j := range backlog {
		select {
		case <-j.Started():
			started++
		case <-time.After(10 * time.Second):
		}
		if started >= d.Target-1 {
			break
		}
	}
	if started < d.Target-1 {
		t.Fatalf("only %d backlog jobs started on a pool of %d", started, d.Target)
	}

	events, total := s.pool.snapshotEvents()
	if total != 1 || len(events) != 1 || events[0].From != 1 || events[0].To != d.Target {
		t.Fatalf("scale events = %+v (total %d)", events, total)
	}
	if !strings.Contains(events[0].Reason, "queue depth") {
		t.Fatalf("event reason = %q, want a queue-depth reason", events[0].Reason)
	}
	if c := s.Metrics().Counter(`service.scale_events.total|dir=up`).Value(); c != 1 {
		t.Fatalf("scale_events_total{dir=up} = %d, want 1", c)
	}
}

// TestAutoscalePoolShrinksWhenIdle grows the pool by decision, then walks
// simulated time through flap damping and the down cooldown, checking the
// shrink happens one worker at a time and stops at min-workers.
func TestAutoscalePoolShrinksWhenIdle(t *testing.T) {
	cfg := scaleTestConfig()
	cfg.Workers = 3
	cfg.Scaler = scaler.Config{DownStableMS: 100, DownCooldownMS: 200}
	s := New(cfg)
	defer s.Shutdown(context.Background())

	// Idle pool: queue empty, nobody busy, p95 zero. First evaluation only
	// opens the low-load window, so it must hold.
	if d := s.evaluateScale(0); d.Verdict != scaler.Down && d.Verdict != scaler.Hold {
		t.Fatalf("decision at t=0: %+v", d)
	} else if d.Verdict == scaler.Down {
		t.Fatalf("scale-down before low load was stable: %+v", d)
	}
	if d := s.evaluateScale(150); d.Verdict != scaler.Down || d.Target != 2 {
		t.Fatalf("decision at t=150 = %+v, want down to 2", d)
	}
	if got := poolSize(s); got != 2 {
		t.Fatalf("pool size = %d, want 2", got)
	}
	// Within the down cooldown: held even though load is still low.
	if d := s.evaluateScale(250); d.Verdict != scaler.Hold {
		t.Fatalf("decision inside cooldown = %+v, want hold", d)
	}
	if d := s.evaluateScale(400); d.Verdict != scaler.Down || d.Target != 1 {
		t.Fatalf("decision at t=400 = %+v, want down to 1", d)
	}
	// At min-workers: held forever after.
	if d := s.evaluateScale(10_000); d.Verdict != scaler.Hold {
		t.Fatalf("decision at min-workers = %+v, want hold", d)
	}
	if got := poolSize(s); got != 1 {
		t.Fatalf("pool size = %d, want 1", got)
	}
	if c := s.Metrics().Counter(`service.scale_events.total|dir=down`).Value(); c != 2 {
		t.Fatalf("scale_events_total{dir=down} = %d, want 2", c)
	}

	// The shrink must be real: the quit tokens outstanding plus the live
	// workers reconcile once jobs flow again — a submission still runs.
	job, err := s.Submit(tinySpec(42))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job never finished on the shrunk pool")
	}
}

// TestRetryAfterDrainEstimate pins the 429 Retry-After arithmetic: the
// next slot opens in about meanJobMS/busyWorkers, rounded up to whole
// seconds and clamped to [1, 60].
func TestRetryAfterDrainEstimate(t *testing.T) {
	s := New(Config{Workers: 2, ScaleInterval: -1})
	defer s.Shutdown(context.Background())

	// No completed jobs yet: no drain rate to derive, so the floor.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("retry-after with no history = %d, want 1", got)
	}

	s.pool.observeJob(2000)
	s.pool.observeJob(4000) // mean 3000ms
	s.pool.mu.Lock()
	s.pool.busy = 2
	s.pool.mu.Unlock()
	if got := s.retryAfterSeconds(); got != 2 { // ceil(3000/2/1000)
		t.Fatalf("retry-after = %d, want 2", got)
	}

	// Huge jobs clamp at the 60s ceiling rather than telling clients to
	// come back in an hour.
	for i := 0; i < ringSize; i++ {
		s.pool.observeJob(10 * 60 * 1000)
	}
	if got := s.retryAfterSeconds(); got != 60 {
		t.Fatalf("retry-after = %d, want clamped 60", got)
	}
	s.pool.mu.Lock()
	s.pool.busy = 0
	s.pool.mu.Unlock()
}

// TestAutoscaleRaceSubmitCancelDrain hammers an autoscaling pool with
// concurrent submissions, cancellations, and scale evaluations, then
// shuts down mid-flight. Run under -race (make race-service) this is the
// data-race probe for the grow/shrink plumbing.
func TestAutoscaleRaceSubmitCancelDrain(t *testing.T) {
	cfg := scaleTestConfig()
	cfg.MaxWorkers = 6
	cfg.QueueDepth = 64
	cfg.Scaler = scaler.Config{DownStableMS: 1, DownCooldownMS: 1, UpCooldownMS: 1}
	s := New(cfg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scaling churn: fabricated clocks marching forward concurrently with
	// the real job traffic, so grows and shrinks interleave with runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for now := int64(0); ; now += 50 {
			select {
			case <-stop:
				return
			default:
				s.evaluateScale(now)
			}
		}
	}()
	const submitters = 6
	ids := make(chan string, submitters*8)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				job, err := s.Submit(tinySpec(int64(g*8 + i + 1)))
				if err != nil {
					continue // queue-full under churn is fine
				}
				ids <- job.ID
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < submitters*4; i++ {
			select {
			case id := <-ids:
				s.Cancel(id)
			case <-stop:
				return
			}
		}
	}()

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let the churn overlap, then drain while it is still possible a
	// scale-down token is in flight.
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("test goroutines never finished")
	}
}

// TestGracefulDrainDuringScaleDown shuts down right after a scale-down
// put a quit token in flight: the drain must terminate every worker
// regardless of whether it exits via the token or the closed queue, and
// the still-running job must finish cleanly.
func TestGracefulDrainDuringScaleDown(t *testing.T) {
	cfg := scaleTestConfig()
	cfg.Workers = 3
	cfg.Scaler = scaler.Config{DownStableMS: 1, DownCooldownMS: 1}
	release := make(chan struct{})
	s := blockingServer(t, cfg, release)

	// Park one worker on a real job so "busy < current" holds and the
	// idle evaluation scales down.
	job, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, job.ID)
	if d := s.evaluateScale(0); d.Verdict == scaler.Down {
		t.Fatalf("low-load window must open before a down: %+v", d)
	}
	if d := s.evaluateScale(10); d.Verdict != scaler.Down {
		t.Fatalf("decision = %+v, want down with a token in flight", d)
	}

	// Shutdown with the quit token still undelivered: one idle worker may
	// consume it, the others leave via the closed queue; either way the
	// drain completes once the runner is released.
	errCh := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		errCh <- s.Shutdown(ctx)
	}()
	close(release)
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain hung with a scale-down in flight")
	}
	if j := pollView(t, s, job.ID); j != StateDone {
		t.Fatalf("parked job state after drain = %q, want done", j)
	}
}

// pollView returns the job's terminal state after its done channel closed.
func pollView(t *testing.T, s *Server, id string) State {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never finished", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.state
}

// TestScaleDebugEndpoint checks GET /debug/scale reports the pool state
// and the applied events, and that healthz carries the pool fields.
func TestScaleDebugEndpoint(t *testing.T) {
	cfg := scaleTestConfig()
	cfg.Workers = 2
	cfg.Scaler = scaler.Config{DownStableMS: 1, DownCooldownMS: 1}
	s := New(cfg)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.evaluateScale(0)
	if d := s.evaluateScale(10); d.Verdict != scaler.Down {
		t.Fatalf("setup decision = %+v, want down", d)
	}

	code, body := get(t, ts.URL+"/debug/scale")
	if code != http.StatusOK {
		t.Fatalf("/debug/scale code = %d", code)
	}
	var view struct {
		WorkersCurrent int            `json:"workers_current"`
		MinWorkers     int            `json:"min_workers"`
		MaxWorkers     int            `json:"max_workers"`
		EventsTotal    int            `json:"events_total"`
		Events         []scaler.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.WorkersCurrent != 1 || view.MinWorkers != 1 || view.MaxWorkers != 4 {
		t.Fatalf("/debug/scale pool state = %+v", view)
	}
	if view.EventsTotal != 1 || len(view.Events) != 1 || view.Events[0].From != 2 || view.Events[0].To != 1 {
		t.Fatalf("/debug/scale events = %+v", view)
	}

	st := s.Stats()
	if st.Workers != 1 || st.ScaleEvents != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if g := s.Metrics().Gauge("service.workers_current").Value(); g != 1 {
		t.Fatalf("workers_current gauge = %d, want 1", g)
	}
}
