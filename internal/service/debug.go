package service

// Debug-surface handlers: the /debug/ index, the drift-monitor status
// endpoint, and the scrape-time Go runtime gauges.

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"time"

	"webmeasure/internal/drift"
)

// handleDebugIndex serves a plain HTML index of the debug endpoints, so
// an operator pointed at /debug/ can discover the rest.
func (s *Server) handleDebugIndex(w http.ResponseWriter, _ *http.Request) {
	type entry struct{ path, desc string }
	entries := []entry{
		{"/debug/pprof/", "live profiling (go tool pprof)"},
		{"/debug/traces", "recent traced jobs, newest first"},
		{"/debug/scale", "autoscaler events and pool state"},
		{"/debug/drift", "longitudinal drift monitor status"},
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, "<!DOCTYPE html>\n<html><head><title>webmeasure debug</title></head><body>\n")
	fmt.Fprint(w, "<h1>webmeasure debug endpoints</h1>\n<ul>\n")
	for _, e := range entries {
		fmt.Fprintf(w, "<li><a href=%q>%s</a> — %s</li>\n", e.path, e.path, e.desc)
	}
	fmt.Fprint(w, "</ul>\n</body></html>\n")
}

// driftView is the /debug/drift response body.
type driftView struct {
	MonitorStatus
	// LastDelta is the newest sequential epoch-over-epoch delta.
	LastDelta *drift.Delta `json:"last_delta,omitempty"`
	// LastPinned is the newest delta against the pinned baseline.
	LastPinned *drift.Delta `json:"last_pinned,omitempty"`
	// RecentAlerts holds the newest alerts, oldest first.
	RecentAlerts []drift.Alert `json:"recent_alerts,omitempty"`
}

// debugDriftAlerts bounds the /debug/drift recent-alerts listing.
const debugDriftAlerts = 20

// handleDrift serves the drift monitor's live status: progress through
// the epoch schedule, the latest deltas, and the recent alerts. When
// monitor mode is off it answers 404 so probes can tell "not enabled"
// from "no drift yet".
func (s *Server) handleDrift(w http.ResponseWriter, _ *http.Request) {
	m := s.monitor
	if m == nil {
		writeError(w, http.StatusNotFound, "drift monitor not enabled (start the server in monitor mode)")
		return
	}
	view := driftView{MonitorStatus: m.status()}
	m.mu.Lock()
	if n := len(m.deltas); n > 0 {
		view.LastDelta = m.deltas[n-1]
	}
	if n := len(m.pinned); n > 0 {
		view.LastPinned = m.pinned[n-1]
	}
	if n := len(m.alerts); n > 0 {
		lo := n - debugDriftAlerts
		if lo < 0 {
			lo = 0
		}
		view.RecentAlerts = append([]drift.Alert(nil), m.alerts[lo:]...)
	}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// sampleRuntime refreshes the Go runtime gauges the /metrics endpoint
// exports. Called per scrape.
func (s *Server) sampleRuntime() {
	s.reg.Gauge("go.goroutines").Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("go.heap_inuse_bytes").Set(int64(ms.HeapInuse))
	s.reg.FloatGauge("go.gc_pause_p95_ms").Set(gcPauseP95MS(&ms))
	s.reg.FloatGauge("process.uptime_seconds").Set(time.Since(s.started).Seconds())
}

// gcPauseP95MS computes the 95th-percentile GC stop-the-world pause in
// milliseconds over the runtime's ring of recent pauses (up to 256).
func gcPauseP95MS(ms *runtime.MemStats) float64 {
	n := int(ms.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(ms.PauseNs) {
		n = len(ms.PauseNs)
	}
	pauses := make([]uint64, n)
	copy(pauses, ms.PauseNs[:n])
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := (n*95 + 99) / 100 // ceil(0.95n), 1-based
	if idx < 1 {
		idx = 1
	}
	return float64(pauses[idx-1]) / 1e6
}
