package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"webmeasure"
)

// monitorSpec is the tiny experiment the monitor tests rerun per epoch.
func monitorSpec(workers, siteWorkers int) JobSpec {
	return JobSpec{
		Seed:         7,
		Sites:        4,
		TrancoSize:   40,
		PagesPerSite: 2,
		Workers:      workers,
		SiteWorkers:  siteWorkers,
	}
}

// startMonitorServer boots a server in monitor mode over stateDir and
// waits for the monitor loop to finish.
func startMonitorServer(t *testing.T, stateDir string, spec JobSpec, epochs int) *Server {
	t.Helper()
	s := New(Config{
		Workers: 1,
		Monitor: &MonitorConfig{
			Spec:     spec,
			Epochs:   epochs,
			StateDir: stateDir,
			PinEpoch: -1,
		},
	})
	select {
	case <-s.MonitorDone():
	case <-time.After(120 * time.Second):
		t.Fatal("monitor did not finish")
	}
	if st, ok := s.MonitorStatus(); !ok || st.LastError != "" {
		t.Fatalf("monitor status: ok=%v err=%q", ok, st.LastError)
	}
	return s
}

// readStateDir returns every file in dir keyed by name.
func readStateDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestMonitorDeterministicAcrossWorkerCounts is the monitor's golden
// determinism property: two servers running the same 3-epoch schedule —
// one with serial analysis and crawling, one with 8 analysis workers and
// 8 site workers — must write byte-identical state directories
// (baselines, deltas, pinned deltas, alerts.jsonl, drift.csv,
// drift-report.txt).
func TestMonitorDeterministicAcrossWorkerCounts(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	sa := startMonitorServer(t, dirA, monitorSpec(1, 1), 3)
	defer shutdownServer(t, sa)
	sb := startMonitorServer(t, dirB, monitorSpec(8, 8), 3)
	defer shutdownServer(t, sb)

	filesA, filesB := readStateDir(t, dirA), readStateDir(t, dirB)
	if len(filesA) != len(filesB) {
		t.Fatalf("state dirs differ in file count: %d vs %d", len(filesA), len(filesB))
	}
	names := make([]string, 0, len(filesA))
	for name := range filesA {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := filesB[name]
		if !ok {
			t.Errorf("%s missing from second state dir", name)
			continue
		}
		if !bytes.Equal(filesA[name], b) {
			t.Errorf("%s differs between worker counts", name)
		}
	}

	// The schedule must have produced the full artifact set: one baseline
	// per epoch, sequential + pinned deltas, and the three derived files.
	for _, want := range []string{
		"baseline-e0000.json", "baseline-e0001.json", "baseline-e0002.json",
		"delta-e0000-e0001.json", "delta-e0001-e0002.json",
		"pinned-e0001.json", "pinned-e0002.json",
		"alerts.jsonl", "drift.csv", "drift-report.txt",
	} {
		if _, ok := filesA[want]; !ok {
			t.Errorf("state dir missing %s (have %v)", want, names)
		}
	}
	if !bytes.HasPrefix(filesA["drift.csv"], []byte("from_epoch,to_epoch,")) {
		t.Errorf("drift.csv lacks the header: %q", filesA["drift.csv"])
	}
	if !bytes.Contains(filesA["drift-report.txt"], []byte("== Longitudinal drift: epoch 0 -> 1 ==")) {
		t.Errorf("drift-report.txt lacks the epoch 0->1 section")
	}
}

// shutdownServer drains with a deadline.
func shutdownServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestMonitorResume pins that a restarted server resumes from the
// persisted baselines without re-running finished epochs, and rebuilds
// the derived artifacts to the exact bytes of the uninterrupted run.
func TestMonitorResume(t *testing.T) {
	dir := t.TempDir()
	s1 := startMonitorServer(t, dir, monitorSpec(0, 0), 3)
	shutdownServer(t, s1)
	before := readStateDir(t, dir)

	// A resumed run must never reach the runner: every epoch's baseline
	// is already on disk.
	s2 := New(Config{
		Workers: 1,
		Runner: func(context.Context, webmeasure.Config) (*webmeasure.Results, error) {
			return nil, fmt.Errorf("resume must not re-run finished epochs")
		},
		Monitor: &MonitorConfig{
			Spec:     monitorSpec(0, 0),
			Epochs:   3,
			StateDir: dir,
		},
	})
	select {
	case <-s2.MonitorDone():
	case <-time.After(60 * time.Second):
		t.Fatal("resumed monitor did not finish")
	}
	defer shutdownServer(t, s2)
	st, _ := s2.MonitorStatus()
	if st.LastError != "" {
		t.Fatalf("resume failed: %s", st.LastError)
	}
	if st.EpochsDone != 3 || !st.Done {
		t.Fatalf("resume status: done=%v epochs=%d", st.Done, st.EpochsDone)
	}

	after := readStateDir(t, dir)
	if len(after) != len(before) {
		t.Fatalf("resume changed the file count: %d vs %d", len(after), len(before))
	}
	for name, data := range before {
		if !bytes.Equal(after[name], data) {
			t.Errorf("resume changed %s", name)
		}
	}
}

// getJSON fetches url and decodes the JSON body into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("GET %s: decode: %v\n%s", url, err, body)
	}
}

// readAll drains and closes a response body.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMonitorEndpoints exercises the HTTP surface of monitor mode:
// /debug/drift, the monitor block in /healthz, and the /debug/ index.
func TestMonitorEndpoints(t *testing.T) {
	dir := t.TempDir()
	s := startMonitorServer(t, dir, monitorSpec(0, 0), 2)
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var drift struct {
		MonitorStatus
		LastDelta  *json.RawMessage `json:"last_delta"`
		LastPinned *json.RawMessage `json:"last_pinned"`
	}
	getJSON(t, ts.URL+"/debug/drift", &drift)
	if !drift.Enabled || !drift.Done {
		t.Errorf("drift status: enabled=%v done=%v", drift.Enabled, drift.Done)
	}
	if drift.EpochsDone != 2 || drift.LastEpoch != 1 {
		t.Errorf("drift progress: done=%d last=%d", drift.EpochsDone, drift.LastEpoch)
	}
	if drift.LastDelta == nil {
		t.Error("drift status lacks last_delta")
	}

	var health struct {
		Status        string  `json:"status"`
		Version       string  `json:"version"`
		Build         string  `json:"build"`
		GoVersion     string  `json:"go_version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Monitor       *struct {
			Enabled    bool `json:"enabled"`
			EpochsDone int  `json:"epochs_done"`
		} `json:"monitor"`
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" || health.Version == "" || health.Build == "" {
		t.Errorf("healthz identity: %+v", health)
	}
	if !strings.HasPrefix(health.GoVersion, "go") || health.UptimeSeconds <= 0 {
		t.Errorf("healthz runtime info: %+v", health)
	}
	if health.Monitor == nil || !health.Monitor.Enabled || health.Monitor.EpochsDone != 2 {
		t.Errorf("healthz monitor block: %+v", health.Monitor)
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/ status %d", resp.StatusCode)
	}
	for _, want := range []string{"/debug/pprof/", "/debug/traces", "/debug/scale", "/debug/drift"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/ index lacks %s:\n%s", want, body)
		}
	}
}

// TestDriftEndpointDisabled pins the 404 when monitor mode is off.
func TestDriftEndpointDisabled(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdownServer(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/drift")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != 404 {
		t.Fatalf("/debug/drift without monitor: status %d, want 404", resp.StatusCode)
	}
}
