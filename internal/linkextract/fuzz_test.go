package linkextract

import (
	"net/url"
	"strings"
	"testing"
)

// FuzzParseLinks guards the forgiving HTML tokenizer against arbitrary
// documents and base URLs: Extract must never panic, must be
// deterministic, and every extracted reference must be an http(s) URL
// without a fragment and without duplicates.
func FuzzParseLinks(f *testing.F) {
	base := "https://site.example/dir/page.html"
	seeds := []struct{ doc, base string }{
		{`<a href="/x">x</a><script src="a.js"></script>`, base},
		{`<!-- <a href="ghost"> --><A HREF='y.html'>`, base},
		{`<base href="https://other.example/"><img src=pic.png>`, base},
		{`<link rel="Stylesheet" href="s.css"><iframe src="f.html">`, base},
		{`<a href="javascript:void(0)"><a href="#frag"><a href="data:,x">`, base},
		{`<script>var s = "<a href='inside.html'>";</script><a href=real.html>`, base},
		{`<a href="x.html?a=1&amp;b=2#sec">`, base},
		{`<a href=`, base},
		{`<<<>>><a`, ""},
		{strings.Repeat(`<a href="p">`, 50), "http://[::1"},
		{`<a href="//proto.example/p">`, base},
	}
	for _, s := range seeds {
		f.Add(s.doc, s.base)
	}
	f.Fuzz(func(t *testing.T, doc, baseURL string) {
		links := Extract(doc, baseURL)
		seen := map[string]bool{}
		for _, group := range [][]string{
			links.Anchors, links.Scripts, links.Images, links.Stylesheets, links.Frames,
		} {
			for _, raw := range group {
				u, err := url.Parse(raw)
				if err != nil {
					t.Fatalf("extracted unparsable URL %q", raw)
				}
				if u.Scheme != "http" && u.Scheme != "https" {
					t.Fatalf("extracted non-http(s) URL %q", raw)
				}
				if u.Fragment != "" {
					t.Fatalf("extracted URL kept its fragment: %q", raw)
				}
				if seen[raw] {
					t.Fatalf("duplicate reference %q", raw)
				}
				seen[raw] = true
			}
		}
		again := Extract(doc, baseURL)
		if len(again.Anchors) != len(links.Anchors) || len(again.Scripts) != len(links.Scripts) ||
			len(again.Images) != len(links.Images) || len(again.Stylesheets) != len(links.Stylesheets) ||
			len(again.Frames) != len(links.Frames) {
			t.Fatal("Extract not deterministic")
		}
	})
}
