package linkextract

import (
	"strings"
	"testing"
	"testing/quick"
)

const base = "https://news.example/articles/today"

func TestExtractBasics(t *testing.T) {
	doc := `<!DOCTYPE html>
<html><head>
<link rel="stylesheet" href="/styles/a.css">
<link rel=icon href=/favicon.ico>
<script src="https://cdn.example/lib.js"></script>
</head><body>
<a href="/page-1">one</a>
<a href='page-2'>two (relative)</a>
<a href="https://other.example/out">external</a>
<img src="/img/logo.png">
<iframe src="https://ads.example/frame"></iframe>
</body></html>`
	l := Extract(doc, base)
	wantAnchors := []string{
		"https://news.example/page-1",
		"https://news.example/articles/page-2",
		"https://other.example/out",
	}
	if len(l.Anchors) != len(wantAnchors) {
		t.Fatalf("anchors = %v", l.Anchors)
	}
	for i, w := range wantAnchors {
		if l.Anchors[i] != w {
			t.Errorf("anchor %d = %q, want %q", i, l.Anchors[i], w)
		}
	}
	if len(l.Stylesheets) != 1 || l.Stylesheets[0] != "https://news.example/styles/a.css" {
		t.Errorf("stylesheets = %v (icon must not count)", l.Stylesheets)
	}
	if len(l.Scripts) != 1 || l.Scripts[0] != "https://cdn.example/lib.js" {
		t.Errorf("scripts = %v", l.Scripts)
	}
	if len(l.Images) != 1 || len(l.Frames) != 1 {
		t.Errorf("images = %v frames = %v", l.Images, l.Frames)
	}
}

func TestExtractBaseTag(t *testing.T) {
	doc := `<base href="https://mirror.example/root/"><a href="sub">x</a>`
	l := Extract(doc, base)
	if len(l.Anchors) != 1 || l.Anchors[0] != "https://mirror.example/root/sub" {
		t.Errorf("anchors = %v", l.Anchors)
	}
}

func TestExtractSkipsNonHTTP(t *testing.T) {
	doc := `<a href="javascript:void(0)">j</a>
<a href="mailto:x@y.example">m</a>
<a href="data:text/plain,hi">d</a>
<a href="#section">f</a>
<a href="ftp://files.example/x">ftp</a>
<a href="/ok">ok</a>`
	l := Extract(doc, base)
	if len(l.Anchors) != 1 || l.Anchors[0] != "https://news.example/ok" {
		t.Errorf("anchors = %v", l.Anchors)
	}
}

func TestExtractDeduplicatesAndStripsFragments(t *testing.T) {
	doc := `<a href="/p">1</a><a href="/p#top">2</a><a href="/p">3</a>`
	l := Extract(doc, base)
	if len(l.Anchors) != 1 {
		t.Errorf("anchors = %v", l.Anchors)
	}
}

func TestExtractMalformedHTML(t *testing.T) {
	cases := []string{
		`<a href="/x`,                   // unterminated attribute
		`< a href="/x">`,                // space after <
		`<a href=/x><a href=>`,          // unquoted + empty
		`1 < 2 but <a href="/x">ok</a>`, // stray <
		`<!-- <a href="/no"> --> <a href="/yes">`,
		`<A HREF="/caps">`, // case-insensitive
		`<a data-x='y' href="/attr" download>`,
	}
	for _, doc := range cases {
		l := Extract(doc, base) // must not panic
		for _, a := range l.Anchors {
			if strings.Contains(a, "/no") {
				t.Errorf("commented link extracted from %q", doc)
			}
		}
	}
	if l := Extract(`<a href="/yes">`, base); len(l.Anchors) != 1 {
		t.Error("baseline extraction broken")
	}
	if l := Extract(`<A HREF="/caps">`, base); len(l.Anchors) != 1 {
		t.Error("case-insensitive extraction broken")
	}
}

func TestExtractSkipsScriptContent(t *testing.T) {
	doc := `<script>var s = '<a href="/phantom">';</script><a href="/real">`
	l := Extract(doc, base)
	if len(l.Anchors) != 1 || !strings.HasSuffix(l.Anchors[0], "/real") {
		t.Errorf("anchors = %v (script content leaked)", l.Anchors)
	}
	// Case-insensitive closer.
	doc = `<SCRIPT>x<a href="/p1"></SCRIPT><a href="/p2">`
	l = Extract(doc, base)
	if len(l.Anchors) != 1 || !strings.HasSuffix(l.Anchors[0], "/p2") {
		t.Errorf("anchors = %v", l.Anchors)
	}
}

func TestExtractEntities(t *testing.T) {
	doc := `<a href="/search?a=1&amp;b=2">x</a>`
	l := Extract(doc, base)
	if len(l.Anchors) != 1 || !strings.HasSuffix(l.Anchors[0], "a=1&b=2") {
		t.Errorf("anchors = %v", l.Anchors)
	}
}

func TestExtractBadBase(t *testing.T) {
	l := Extract(`<a href="https://abs.example/x">`, "http://[::1")
	if len(l.Anchors) != 1 {
		t.Errorf("absolute URLs must survive a bad base: %v", l.Anchors)
	}
	l = Extract(`<a href="/rel">`, "http://[::1")
	if len(l.Anchors) != 1 || l.Anchors[0] != "/rel" {
		// With no usable base, relative URLs cannot resolve to http(s) and
		// are dropped.
		if len(l.Anchors) != 0 {
			t.Errorf("anchors = %v", l.Anchors)
		}
	}
}

// Property: the tokenizer never panics and produces resolvable output on
// arbitrary input.
func TestExtractNeverPanics(t *testing.T) {
	f := func(doc string) bool {
		l := Extract(doc, base)
		for _, a := range l.Anchors {
			if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExtract(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><head><link rel=stylesheet href=/s.css></head><body>")
	for i := 0; i < 100; i++ {
		sb.WriteString(`<a href="/page-`)
		sb.WriteByte(byte('0' + i%10))
		sb.WriteString(`">link</a><img src="/img.png">`)
	}
	sb.WriteString("</body></html>")
	doc := sb.String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extract(doc, base)
	}
}
