// Package linkextract parses HTML documents for the resources and links
// they reference — the substrate behind the paper's page discovery
// (§3.1.2: visiting each landing page "to collect 25 subpages (i.e.,
// first-party links on the page)", recursing when a page holds too few).
// It implements a small, forgiving HTML tokenizer: attribute quoting in
// all three styles, case-insensitive names, <base href> resolution,
// comments, and garbage tolerance — real-world HTML is never clean.
package linkextract

import (
	"net/url"
	"strings"
)

// Links are the references found in one document, resolved against the
// document's base URL, in document order, with duplicates removed.
type Links struct {
	Anchors     []string // <a href>
	Scripts     []string // <script src>
	Images      []string // <img src>
	Stylesheets []string // <link rel=stylesheet href>
	Frames      []string // <iframe src>
}

// Extract parses the document and resolves every reference against
// baseURL (overridden by a <base href> tag if present). Unresolvable or
// non-HTTP(S) references are dropped.
func Extract(document, baseURL string) Links {
	base, err := url.Parse(baseURL)
	if err != nil {
		base = nil
	}
	var out Links
	seen := map[string]bool{}
	add := func(dst *[]string, raw string) {
		resolved := resolve(base, raw)
		if resolved == "" || seen[resolved] {
			return
		}
		seen[resolved] = true
		*dst = append(*dst, resolved)
	}

	for _, tag := range tokenize(document) {
		switch tag.name {
		case "base":
			if href := tag.attrs["href"]; href != "" && base != nil {
				if nb, err := base.Parse(href); err == nil {
					base = nb
				}
			}
		case "a":
			add(&out.Anchors, tag.attrs["href"])
		case "script":
			add(&out.Scripts, tag.attrs["src"])
		case "img":
			add(&out.Images, tag.attrs["src"])
		case "iframe", "frame":
			add(&out.Frames, tag.attrs["src"])
		case "link":
			rel := strings.ToLower(tag.attrs["rel"])
			if strings.Contains(rel, "stylesheet") {
				add(&out.Stylesheets, tag.attrs["href"])
			}
		}
	}
	return out
}

// resolve resolves raw against base, dropping fragments, javascript: and
// data: URLs, and anything that does not end up http(s).
func resolve(base *url.URL, raw string) string {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return ""
	}
	lower := strings.ToLower(raw)
	if strings.HasPrefix(lower, "javascript:") || strings.HasPrefix(lower, "data:") ||
		strings.HasPrefix(lower, "mailto:") || strings.HasPrefix(raw, "#") {
		return ""
	}
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	if base != nil {
		u = base.ResolveReference(u)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return ""
	}
	u.Fragment = ""
	return u.String()
}

// tag is one parsed start tag.
type tag struct {
	name  string
	attrs map[string]string
}

// tokenize scans the document for start tags and their attributes. It is
// not a conforming HTML5 tokenizer, but it handles the constructs found in
// the wild: comments, unquoted/single/double-quoted attributes, boolean
// attributes, self-closing tags, stray '<' characters, and attribute names
// in any case. Script/style element *content* is skipped so embedded "<a"
// strings inside code don't produce phantom tags.
func tokenize(doc string) []tag {
	var tags []tag
	i := 0
	n := len(doc)
	for i < n {
		lt := strings.IndexByte(doc[i:], '<')
		if lt < 0 {
			break
		}
		i += lt
		// Comment?
		if strings.HasPrefix(doc[i:], "<!--") {
			end := strings.Index(doc[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		// Closing tag or declaration: skip to '>'.
		if i+1 < n && (doc[i+1] == '/' || doc[i+1] == '!' || doc[i+1] == '?') {
			gt := strings.IndexByte(doc[i:], '>')
			if gt < 0 {
				break
			}
			i += gt + 1
			continue
		}
		t, next, ok := parseStartTag(doc, i)
		if !ok {
			i++ // stray '<'
			continue
		}
		tags = append(tags, t)
		i = next
		// Skip raw-text element content.
		if t.name == "script" || t.name == "style" {
			closer := "</" + t.name
			idx := indexFold(doc[i:], closer)
			if idx < 0 {
				break
			}
			i += idx
		}
	}
	return tags
}

// parseStartTag parses a start tag beginning at doc[i] == '<'. It returns
// the tag, the index after '>', and whether a valid tag was parsed.
func parseStartTag(doc string, i int) (tag, int, bool) {
	n := len(doc)
	j := i + 1
	start := j
	for j < n && isNameByte(doc[j]) {
		j++
	}
	if j == start {
		return tag{}, 0, false
	}
	t := tag{name: strings.ToLower(doc[start:j]), attrs: map[string]string{}}
	for {
		// Skip whitespace and slashes.
		for j < n && (doc[j] == ' ' || doc[j] == '\t' || doc[j] == '\n' || doc[j] == '\r' || doc[j] == '/') {
			j++
		}
		if j >= n {
			return tag{}, 0, false
		}
		if doc[j] == '>' {
			return t, j + 1, true
		}
		// Attribute name.
		nameStart := j
		for j < n && doc[j] != '=' && doc[j] != '>' && doc[j] != ' ' && doc[j] != '\t' && doc[j] != '\n' && doc[j] != '\r' && doc[j] != '/' {
			j++
		}
		name := strings.ToLower(doc[nameStart:j])
		if name == "" {
			j++
			continue
		}
		// Skip whitespace before '='.
		for j < n && (doc[j] == ' ' || doc[j] == '\t') {
			j++
		}
		if j < n && doc[j] == '=' {
			j++
			for j < n && (doc[j] == ' ' || doc[j] == '\t') {
				j++
			}
			if j >= n {
				return tag{}, 0, false
			}
			var value string
			switch doc[j] {
			case '"', '\'':
				quote := doc[j]
				j++
				end := strings.IndexByte(doc[j:], quote)
				if end < 0 {
					return tag{}, 0, false
				}
				value = doc[j : j+end]
				j += end + 1
			default:
				valStart := j
				for j < n && doc[j] != ' ' && doc[j] != '\t' && doc[j] != '\n' && doc[j] != '\r' && doc[j] != '>' {
					j++
				}
				value = doc[valStart:j]
			}
			t.attrs[name] = htmlUnescape(value)
		} else {
			t.attrs[name] = "" // boolean attribute
		}
	}
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-'
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(s, needle string) int {
	needle = strings.ToLower(needle)
	limit := len(s) - len(needle)
	for i := 0; i <= limit; i++ {
		if strings.EqualFold(s[i:i+len(needle)], needle) {
			return i
		}
	}
	return -1
}

// htmlUnescape handles the entities that occur in URLs.
var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`, "&#39;", "'", "&#x2F;", "/",
)

func htmlUnescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	return entityReplacer.Replace(s)
}
