package webmeasure

// The longitudinal determinism goldens: a multi-epoch drift sequence
// (baselines, deltas, drift.csv, the report drift section, the alert
// sequence) must be byte-identical whatever the worker counts and
// whether the epochs were crawled buffered or streamed.

import (
	"bytes"
	"context"
	"testing"

	"webmeasure/internal/dataset"
	"webmeasure/internal/drift"
	"webmeasure/internal/report"
)

// driftCfg is the small 3-epoch experiment the goldens rerun.
func driftCfg(epoch, workers, siteWorkers int) Config {
	return Config{
		Seed: 7, Sites: 6, PagesPerSite: 3, Epoch: epoch,
		Workers: workers, SiteWorkers: siteWorkers,
	}
}

// driftEpochs = how many epochs each variant runs.
const driftEpochs = 3

// driftArtifacts renders one epoch sequence end to end: per-epoch
// baseline bytes, sequential delta JSON, drift.csv, the report drift
// sections, and the alert sequence under the default rules.
type driftArtifacts struct {
	baselines [][]byte
	deltas    [][]byte
	csv       []byte
	sections  []byte
	alerts    []drift.Alert
}

// renderDrift folds a baseline sequence into the full artifact set.
func renderDrift(t *testing.T, baselines []*drift.Baseline) driftArtifacts {
	t.Helper()
	var out driftArtifacts
	eng, err := drift.NewEngine(drift.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	var rows []drift.CSVRow
	var sections bytes.Buffer
	for i, b := range baselines {
		enc, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		out.baselines = append(out.baselines, enc)
		if i == 0 {
			continue
		}
		d, err := drift.Diff(baselines[i-1], b)
		if err != nil {
			t.Fatal(err)
		}
		alerts := eng.Evaluate(d)
		out.alerts = append(out.alerts, alerts...)
		rows = append(rows, drift.CSVRow{Delta: d, Alerts: len(alerts)})
		denc, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		out.deltas = append(out.deltas, denc)
		report.WriteDriftSection(&sections, d, alerts)
	}
	var csv bytes.Buffer
	if err := drift.WriteCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	out.csv = csv.Bytes()
	out.sections = sections.Bytes()
	return out
}

// runEpochsBuffered runs the epoch sequence through the ordinary
// buffered pipeline.
func runEpochsBuffered(t *testing.T, workers, siteWorkers int) []*drift.Baseline {
	t.Helper()
	var baselines []*drift.Baseline
	for e := 0; e < driftEpochs; e++ {
		res, err := Run(context.Background(), driftCfg(e, workers, siteWorkers))
		if err != nil {
			t.Fatal(err)
		}
		baselines = append(baselines, res.DriftBaseline())
	}
	return baselines
}

// runEpochsStreamed runs each epoch as cmd/crawl + cmd/analyze would:
// stream the crawl site by site into a columnar dataset, then load and
// analyze the bytes.
func runEpochsStreamed(t *testing.T, siteWorkers int) []*drift.Baseline {
	t.Helper()
	var baselines []*drift.Baseline
	for e := 0; e < driftEpochs; e++ {
		cfg := driftCfg(e, 0, siteWorkers)
		var buf bytes.Buffer
		sink := dataset.NewColSiteWriter(&buf)
		if _, err := CrawlStream(context.Background(), cfg, sink); err != nil {
			t.Fatal(err)
		}
		if err := sink.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := LoadAndAnalyze(bytes.NewReader(buf.Bytes()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		baselines = append(baselines, res.DriftBaseline())
	}
	return baselines
}

// compareDrift asserts two artifact sets agree byte for byte.
func compareDrift(t *testing.T, name string, want, got driftArtifacts) {
	t.Helper()
	for i := range want.baselines {
		if !bytes.Equal(want.baselines[i], got.baselines[i]) {
			t.Errorf("%s: baseline epoch %d differs", name, i)
		}
	}
	for i := range want.deltas {
		if !bytes.Equal(want.deltas[i], got.deltas[i]) {
			t.Errorf("%s: delta %d differs", name, i)
		}
	}
	if !bytes.Equal(want.csv, got.csv) {
		t.Errorf("%s: drift.csv differs:\n%s\nvs\n%s", name, want.csv, got.csv)
	}
	if !bytes.Equal(want.sections, got.sections) {
		t.Errorf("%s: report drift sections differ", name)
	}
	if len(want.alerts) != len(got.alerts) {
		t.Fatalf("%s: alert count %d vs %d", name, len(want.alerts), len(got.alerts))
	}
	for i := range want.alerts {
		if want.alerts[i] != got.alerts[i] {
			t.Errorf("%s: alert %d differs: %+v vs %+v", name, i, want.alerts[i], got.alerts[i])
		}
	}
}

// TestDriftSequenceByteIdentical is the PR's golden: the 3-epoch drift
// artifact set is invariant under analysis workers 1 vs 8, site workers
// 1 vs 8, and buffered vs streamed crawling.
func TestDriftSequenceByteIdentical(t *testing.T) {
	want := renderDrift(t, runEpochsBuffered(t, 1, 1))
	if len(want.baselines) != driftEpochs || len(want.deltas) != driftEpochs-1 {
		t.Fatalf("reference run produced %d baselines, %d deltas",
			len(want.baselines), len(want.deltas))
	}

	t.Run("workers8", func(t *testing.T) {
		compareDrift(t, "workers 8x8", want, renderDrift(t, runEpochsBuffered(t, 8, 8)))
	})
	t.Run("streamed", func(t *testing.T) {
		compareDrift(t, "streamed sw=8", want, renderDrift(t, runEpochsStreamed(t, 8)))
	})
}

// TestDriftEpochsActuallyDrift guards the goldens against vacuity: the
// churned universe must produce real epoch-over-epoch change, so the
// deltas the determinism test compares are non-trivial.
func TestDriftEpochsActuallyDrift(t *testing.T) {
	baselines := runEpochsBuffered(t, 0, 0)
	for i := 1; i < len(baselines); i++ {
		d, err := drift.Diff(baselines[i-1], baselines[i])
		if err != nil {
			t.Fatal(err)
		}
		if d.ThirdPartyJaccard >= 1 && d.TreeSimilarity >= 1 && d.TrackingShareDrift == 0 {
			t.Errorf("epoch %d -> %d shows no drift at all", i-1, i)
		}
		if d.CommonPages == 0 {
			t.Errorf("epoch %d -> %d shares no pages; the page turnover is too aggressive for the goldens", i-1, i)
		}
	}
}

// TestEpochCrawlBytesSiteWorkerInvariant pins satellite 3 directly at
// the dataset layer: an epoch-2 crawl under the site-parallel pool
// emits byte-identical JSONL at 1 and 8 site workers.
func TestEpochCrawlBytesSiteWorkerInvariant(t *testing.T) {
	crawl := func(siteWorkers int) []byte {
		cfg := Config{Seed: 7, Sites: 6, PagesPerSite: 3, Epoch: 2, SiteWorkers: siteWorkers}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteDataset(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(crawl(1), crawl(8)) {
		t.Error("epoch-2 crawl bytes differ between 1 and 8 site workers")
	}
}
