package webmeasure

import (
	"encoding/json"
	"os"
	"testing"
)

// benchJSONFile is where `make bench-json` (scripts/bench_json.sh) records
// the tree-diff hot-path benchmark numbers.
const benchJSONFile = "BENCH_treediff.json"

type benchJSONEntry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// TestBenchJSONWellFormed guards the shape of BENCH_treediff.json so a
// broken awk parse in scripts/bench_json.sh can't silently record garbage.
// The file is a build artifact, not a source file, so the test skips when
// it hasn't been generated (tier-1 stays independent of `make bench-json`).
func TestBenchJSONWellFormed(t *testing.T) {
	raw, err := os.ReadFile(benchJSONFile)
	if os.IsNotExist(err) {
		t.Skipf("%s not generated; run `make bench-json`", benchJSONFile)
	}
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmarks []benchJSONEntry `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("%s is not valid JSON: %v", benchJSONFile, err)
	}
	if len(doc.Benchmarks) == 0 {
		t.Fatalf("%s holds no benchmarks", benchJSONFile)
	}
	seen := map[string]bool{}
	for _, b := range doc.Benchmarks {
		if b.Name == "" || seen[b.Name] {
			t.Errorf("missing or duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Iterations <= 0 {
			t.Errorf("%s: iterations %d, want > 0", b.Name, b.Iterations)
		}
		if b.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op %v, want > 0", b.Name, b.NsPerOp)
		}
		if b.AllocsPerOp < 0 || b.BPerOp < 0 {
			t.Errorf("%s: negative memory stats", b.Name)
		}
	}
	// The hot-path suite must at least cover Compare and the two kernels'
	// pairwise Jaccard; DepthSimilarity rides along in the same run.
	for _, want := range []string{"BenchmarkCompare", "BenchmarkDepthSimilarity", "BenchmarkPairwiseJaccard"} {
		found := false
		for name := range seen {
			if len(name) >= len(want) && name[:len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s records no %s results", benchJSONFile, want)
		}
	}
}
