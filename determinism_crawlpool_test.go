package webmeasure

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"testing"

	"webmeasure/internal/dataset"
	"webmeasure/internal/metrics"
	"webmeasure/internal/trace"
)

// poolRun executes one full Run with the given site-worker count on its
// own registry and tracer, returning the rendered artifacts, both
// dataset encodings, the counter map, and the trace exports.
func poolRun(t *testing.T, cfg Config, siteWorkers int) (artifacts, []byte, []byte, map[string]int64, []byte, []byte) {
	t.Helper()
	reg := metrics.New()
	tr := trace.New(trace.Options{Seed: cfg.Seed, SampleEvery: 1, Metrics: reg})
	cfg.SiteWorkers = siteWorkers
	cfg.Metrics = reg
	cfg.Tracer = tr
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("site-workers=%d: %v", siteWorkers, err)
	}
	var jsonl, col bytes.Buffer
	if err := res.WriteDataset(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteDatasetCol(&col); err != nil {
		t.Fatal(err)
	}
	counters := reg.Dump().Counters
	jl, ch := traceBytes(t, tr)
	return renderArtifacts(t, res), jsonl.Bytes(), col.Bytes(), counters, jl, ch
}

// TestCrawlPoolByteIdentical is the golden 1-vs-8 determinism suite for
// the site-parallel crawl: one site worker and eight must produce
// byte-identical datasets (both formats), report/JSON/CSV artifacts,
// exact counter values, and byte-identical trace exports — on a clean
// network, under heavy fault injection, and with stateful cookie
// sessions.
func TestCrawlPoolByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name     string
		faults   string
		stateful bool
	}{
		{name: "clean"},
		{name: "heavy-faults", faults: "heavy"},
		{name: "stateful", stateful: true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Seed: 17, Sites: 10, PagesPerSite: 4,
				FaultProfile: tc.faults, Stateful: tc.stateful}
			art1, jsonl1, col1, ctr1, jl1, ch1 := poolRun(t, cfg, 1)
			art8, jsonl8, col8, ctr8, jl8, ch8 := poolRun(t, cfg, 8)

			if !bytes.Equal(jsonl1, jsonl8) {
				t.Errorf("JSONL dataset differs between 1 and 8 site workers (%d vs %d bytes)",
					len(jsonl1), len(jsonl8))
			}
			if !bytes.Equal(col1, col8) {
				t.Errorf("columnar dataset differs between 1 and 8 site workers (%d vs %d bytes)",
					len(col1), len(col8))
			}
			if !bytes.Equal(art1.report, art8.report) {
				t.Error("report differs between 1 and 8 site workers")
			}
			if !bytes.Equal(art1.json, art8.json) {
				t.Error("JSON export differs between 1 and 8 site workers")
			}
			if !bytes.Equal(art1.csv, art8.csv) {
				t.Error("CSV export differs between 1 and 8 site workers")
			}
			if !reflect.DeepEqual(ctr1, ctr8) {
				t.Errorf("counters differ between 1 and 8 site workers:\n 1: %v\n 8: %v", ctr1, ctr8)
			}
			if !bytes.Equal(jl1, jl8) {
				t.Errorf("trace JSONL differs between 1 and 8 site workers (%d vs %d bytes)",
					len(jl1), len(jl8))
			}
			if !bytes.Equal(ch1, ch8) {
				t.Errorf("Chrome trace differs between 1 and 8 site workers (%d vs %d bytes)",
					len(ch1), len(ch8))
			}
		})
	}
}

// TestCrawlStreamMatchesRun proves the streaming crawl writes the same
// bytes the buffered path writes, in both formats, and that the streamed
// columnar file — whose blocks land in crawl order, not site order —
// analyzes to the same artifacts through both the indexed (seekable) and
// the buffered (plain reader) load paths.
func TestCrawlStreamMatchesRun(t *testing.T) {
	cfg := Config{Seed: 13, Sites: 8, PagesPerSite: 3, FaultProfile: "light"}

	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSONL, wantCol bytes.Buffer
	if err := res.WriteDataset(&wantJSONL); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteDatasetCol(&wantCol); err != nil {
		t.Fatal(err)
	}

	var gotJSONL bytes.Buffer
	jw := dataset.NewJSONLSiteWriter(&gotJSONL)
	if _, err := CrawlStream(context.Background(), cfg, jw); err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSONL.Bytes(), gotJSONL.Bytes()) {
		t.Error("streamed JSONL differs from buffered WriteDataset")
	}

	var gotCol bytes.Buffer
	cw := dataset.NewColSiteWriter(&gotCol)
	stats, err := CrawlStream(context.Background(), cfg, cw)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if stats != res.CrawlStats() {
		t.Errorf("streamed stats %+v differ from buffered %+v", stats, res.CrawlStats())
	}
	// WriteCol emits blocks in first-insertion (crawl) order, exactly the
	// order the streaming writer sees sites, so the buffered and streamed
	// columnar files agree byte for byte.
	if !bytes.Equal(wantCol.Bytes(), gotCol.Bytes()) {
		t.Error("streamed columnar file differs from buffered WriteDatasetCol")
	}
	streamedDS, err := dataset.ReadCol(bytes.NewReader(gotCol.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var streamedJSONL bytes.Buffer
	if err := streamedDS.WriteJSONL(&streamedJSONL); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSONL.Bytes(), streamedJSONL.Bytes()) {
		t.Error("streamed columnar file does not decode to the buffered visit order")
	}

	want := renderArtifacts(t, res)
	// Indexed load path: a bytes.Reader is seekable, so the footer index
	// drives block iteration in ascending site order.
	indexed, err := LoadAndAnalyze(bytes.NewReader(gotCol.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Buffered fallback path: hide the seekability so ScanColSites runs
	// in body order and the loader must sort the blocks itself.
	buffered, err := LoadAndAnalyze(io.MultiReader(bytes.NewReader(gotCol.Bytes())), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]*Results{"indexed": indexed, "buffered": buffered} {
		art := renderArtifacts(t, got)
		if !bytes.Equal(want.report, art.report) {
			t.Errorf("%s load of the streamed columnar file: report differs from the crawl's", name)
		}
		if !bytes.Equal(want.json, art.json) {
			t.Errorf("%s load of the streamed columnar file: JSON differs from the crawl's", name)
		}
	}
}
