package webmeasure

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runSmall(t testing.TB) *Results {
	t.Helper()
	res, err := Run(context.Background(), Config{Seed: 11, Sites: 25, PagesPerSite: 5})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDefaults(t *testing.T) {
	res := runSmall(t)
	s := res.Summary()
	if s.Sites == 0 || s.Pages == 0 || s.VettedPages == 0 {
		t.Fatalf("summary degenerate: %+v", s)
	}
	if s.MeanNodesPerTree <= 0 || s.MeanNodePresence < 1 || s.MeanNodePresence > 5 {
		t.Errorf("tree stats: %+v", s)
	}
	if s.FirstPartyDepthSimilarity <= s.ThirdPartyDepthSimilarity {
		t.Errorf("party ordering violated: fp=%v tp=%v",
			s.FirstPartyDepthSimilarity, s.ThirdPartyDepthSimilarity)
	}
	if res.Analysis() == nil || res.Universe() == nil || len(res.RankBoundaries()) == 0 {
		t.Error("accessors broken")
	}
	if res.CrawlStats().VisitsTotal == 0 {
		t.Error("crawl stats missing")
	}
}

func TestWriteReport(t *testing.T) {
	res := runSmall(t)
	var buf bytes.Buffer
	res.WriteReport(&buf)
	for _, section := range []string{"Table 2", "Table 5", "Figure 3", "§5.3"} {
		if !strings.Contains(buf.String(), section) {
			t.Errorf("report missing %q", section)
		}
	}
}

func TestDatasetRoundTripThroughFacade(t *testing.T) {
	res := runSmall(t)
	var buf bytes.Buffer
	if err := res.WriteDataset(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAndAnalyze(&buf, Config{Seed: 11, Sites: 25, PagesPerSite: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Summary(), loaded.Summary()
	if a != b {
		t.Errorf("summaries differ after round trip:\n%+v\n%+v", a, b)
	}
}

func TestLoadAndAnalyzeBadInput(t *testing.T) {
	if _, err := LoadAndAnalyze(strings.NewReader("{broken"), Config{}); err == nil {
		t.Error("broken dataset should error")
	}
	if _, err := LoadAndAnalyze(strings.NewReader(""), Config{}); err == nil {
		t.Error("empty dataset should error (no vetted pages)")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Config{Seed: 1, Sites: 10}); err == nil {
		t.Error("cancelled run should error")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.Sites != 100 || c.TrancoSize != 1000 || c.PagesPerSite != 10 {
		t.Errorf("defaults: %+v", c)
	}
	c = Config{Sites: 3000, TrancoSize: 5}.withDefaults()
	if c.TrancoSize < c.Sites {
		t.Errorf("TrancoSize must cover Sites: %+v", c)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runSmall(t).Summary()
	b := runSmall(t).Summary()
	if a != b {
		t.Errorf("same seed produced different summaries:\n%+v\n%+v", a, b)
	}
}

func TestResumeThroughFacade(t *testing.T) {
	cfg := Config{Seed: 13, Sites: 15, PagesPerSite: 4}
	first, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.WriteDataset(&buf); err != nil {
		t.Fatal(err)
	}
	cfg.ResumeJSONL = &buf
	resumed, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.CrawlStats().VisitsReused == 0 {
		t.Error("resume must reuse visits")
	}
	if first.Summary() != resumed.Summary() {
		t.Error("resumed run must equal the original")
	}
	// A broken resume stream errors out.
	cfg.ResumeJSONL = strings.NewReader("{nope")
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("broken resume stream should error")
	}
}

func TestWriteJSONBundle(t *testing.T) {
	res := runSmall(t)
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"tree_overview\"") {
		t.Error("JSON bundle missing sections")
	}
}
