#!/bin/sh
# Smoke test for monitor mode: boot cmd/serve with a 3-epoch drift
# monitor, poll /debug/drift until the schedule completes, assert the
# state directory holds the full artifact set, require the alert JSONL
# to match the committed golden byte for byte (the monitor is
# deterministic end to end), and require a clean SIGINT drain.
#
# Usage: scripts/drift_smoke.sh [path-to-serve-binary]
set -eu

BIN=${1:-./serve}
WORKDIR=$(mktemp -d)
STATE="$WORKDIR/state"
LOG="$WORKDIR/serve.log"
GOLDEN=${DRIFT_GOLDEN:-scripts/golden/drift_alerts.jsonl}
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

"$BIN" -addr 127.0.0.1:0 -workers 1 \
    -monitor-epochs 3 -monitor-seed 7 -monitor-sites 6 -monitor-pages 3 \
    -state-dir "$STATE" >"$LOG" 2>&1 &
PID=$!

# The banner prints the bound address: "serving on http://127.0.0.1:PORT".
BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/^serving on \(http:\/\/[^ ]*\).*/\1/p' "$LOG" | head -n1)
    [ -n "$BASE" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "serve died at startup:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "serve never printed its address:"; cat "$LOG"; exit 1; }

# Wait for the monitor to finish its 3 epochs.
DONE=""
for _ in $(seq 1 600); do
    DRIFT=$(curl -fsS "$BASE/debug/drift")
    DONE=$(printf '%s' "$DRIFT" | sed -n 's/.*"done": *\(true\|false\).*/\1/p')
    ERR=$(printf '%s' "$DRIFT" | sed -n 's/.*"last_error": *"\([^"]*\)".*/\1/p')
    [ -n "$ERR" ] && { echo "monitor failed: $ERR"; exit 1; }
    [ "$DONE" = "true" ] && break
    sleep 0.1
done
[ "$DONE" = "true" ] || { echo "monitor never finished: $DRIFT"; exit 1; }
printf '%s' "$DRIFT" | grep -q '"epochs_done": 3' || {
    echo "monitor did not run 3 epochs: $DRIFT"; exit 1; }

# The health probe must carry the build identity and the monitor block.
HEALTH=$(curl -fsS "$BASE/healthz")
printf '%s' "$HEALTH" | grep -q '"version"' || { echo "healthz lacks version: $HEALTH"; exit 1; }
printf '%s' "$HEALTH" | grep -q '"monitor"' || { echo "healthz lacks monitor: $HEALTH"; exit 1; }

# The debug index must link the drift endpoint.
curl -fsS "$BASE/debug/" | grep -q '/debug/drift' || { echo "/debug/ lacks the drift link"; exit 1; }

# Drift gauges must be exported on /metrics.
curl -fsS "$BASE/metrics" | grep -q '^monitor_epochs_total 3$' || {
    echo "monitor_epochs_total not visible on /metrics"; exit 1; }
curl -fsS "$BASE/metrics" | grep -q '^drift_third_party_jaccard ' || {
    echo "drift_third_party_jaccard not visible on /metrics"; exit 1; }

# The state directory must hold the full artifact set.
for f in baseline-e0000.json baseline-e0001.json baseline-e0002.json \
         delta-e0000-e0001.json delta-e0001-e0002.json \
         alerts.jsonl drift.csv drift-report.txt; do
    [ -f "$STATE/$f" ] || { echo "state dir missing $f"; ls "$STATE"; exit 1; }
done
head -n1 "$STATE/drift.csv" | grep -q '^from_epoch,to_epoch,' || {
    echo "drift.csv header looks wrong:"; head -n1 "$STATE/drift.csv"; exit 1; }

# The alert sequence is deterministic: it must match the golden exactly.
if ! diff -u "$GOLDEN" "$STATE/alerts.jsonl"; then
    echo "alerts.jsonl deviates from the golden $GOLDEN"; exit 1
fi

kill -INT "$PID"
if ! wait "$PID"; then
    echo "serve exited non-zero on shutdown:"; cat "$LOG"; exit 1
fi
grep -q "drained cleanly" "$LOG" || { echo "no clean drain:"; cat "$LOG"; exit 1; }
echo "drift-smoke: OK ($BASE, 3 epochs, $(wc -l <"$STATE/alerts.jsonl") alerts)"
