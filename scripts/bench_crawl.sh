#!/bin/sh
# bench_crawl.sh — measure the site-parallel crawl and record the numbers
# as machine-readable JSON.
#
# cmd/benchcrawl crawls the same 150-site universe at site-worker counts
# {1, 2, 4, 8}, clean and under heavy fault injection, in streaming mode
# (dataset written site by site) plus a buffered baseline at 4 workers,
# each case in a fresh child process so peak RSS is honest. The JSON
# shape is guarded by TestBenchCrawlJSONWellFormed.
#
# Usage: sh scripts/bench_crawl.sh [out.json]
set -e

GO="${GO:-go}"
OUT="${1:-BENCH_crawl.json}"

"$GO" build -o ./bench-crawl-bin ./cmd/benchcrawl
./bench-crawl-bin -out "$OUT"
rm -f ./bench-crawl-bin
