#!/bin/sh
# cover_gate.sh — per-package coverage floor.
#
# Runs `go test -cover` over the packages whose correctness the fault
#-injection PR leans on and fails when any drops below the floor, so
# coverage regressions surface in tier-2 instead of silently eroding.
#
# Usage: sh scripts/cover_gate.sh [floor-percent]
set -e

GO="${GO:-go}"
FLOOR="${1:-80}"
PACKAGES="./internal/faults ./internal/crawler ./internal/stats"

status=0
for pkg in $PACKAGES; do
    line=$("$GO" test -cover "$pkg" | tail -n 1)
    case "$line" in
    ok*coverage:*) ;;
    *)
        echo "cover_gate: no coverage line for $pkg: $line" >&2
        status=1
        continue
        ;;
    esac
    pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "cover_gate: cannot parse coverage from: $line" >&2
        status=1
        continue
    fi
    # Integer compare on the truncated percentage (sh has no float math).
    whole=${pct%.*}
    if [ "$whole" -lt "$FLOOR" ]; then
        echo "cover_gate: FAIL $pkg at ${pct}% (< ${FLOOR}%)" >&2
        status=1
    else
        echo "cover_gate: ok   $pkg at ${pct}% (>= ${FLOOR}%)"
    fi
done
exit $status
