#!/bin/sh
# bench_dataset.sh — measure the dataset formats end to end and record
# the numbers as machine-readable JSON.
#
# cmd/benchdataset crawls the same universe at 1x/4x/16x scale, writes
# each dataset in both formats, and measures decode throughput, full
# load-and-analyze wall time, and peak RSS per (format, op, scale) case
# in a fresh child process each. The JSON shape is guarded by
# TestBenchDatasetJSONWellFormed.
#
# Usage: sh scripts/bench_dataset.sh [out.json]
set -e

GO="${GO:-go}"
OUT="${1:-BENCH_dataset.json}"

"$GO" build -o ./bench-dataset-bin ./cmd/benchdataset
./bench-dataset-bin -out "$OUT"
rm -f ./bench-dataset-bin
