#!/bin/sh
# Smoke test for the tracing pipeline: crawl a few pages with -trace, run
# the resulting Chrome trace-event JSON through cmd/tracecheck (shape +
# required span coverage for every pipeline stage), re-analyze the dataset
# with its own tracer, and finally re-crawl with the same seed to assert
# the exports are byte-identical — the trace is part of the deterministic
# output surface, not a side channel.
#
# Usage: scripts/trace_smoke.sh [crawl-binary] [analyze-binary] [tracecheck-binary]
set -eu

CRAWL=${1:-./crawl}
ANALYZE=${2:-./analyze}
CHECK=${3:-./tracecheck}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

"$CRAWL" -sites 5 -pages 2 -seed 7 -progress 0 -o "$WORKDIR/ds.jsonl" \
    -trace "$WORKDIR/trace.json" -trace-jsonl "$WORKDIR/trace.jsonl" \
    2>"$WORKDIR/crawl.log"

# The crawl command runs only the measurement, so its trace covers the
# crawl stages; the analysis spans are asserted on the analyze trace below.
"$CHECK" -require crawl.visit,crawl.fetch "$WORKDIR/trace.json"
[ -s "$WORKDIR/trace.jsonl" ] || { echo "span JSONL is empty"; exit 1; }
grep -q "Stage breakdown" "$WORKDIR/crawl.log" || {
    echo "crawl printed no stage breakdown:"; cat "$WORKDIR/crawl.log"; exit 1; }
grep -q 'msg="trace written"' "$WORKDIR/crawl.log" || {
    echo "crawl never logged the trace write:"; cat "$WORKDIR/crawl.log"; exit 1; }

# Analysis-only tracing over the crawled dataset.
"$ANALYZE" -i "$WORKDIR/ds.jsonl" -trace "$WORKDIR/analyze.json" -progress 0 \
    >/dev/null 2>"$WORKDIR/analyze.log"
"$CHECK" -require analyze.vet,analyze.build,analyze.compare "$WORKDIR/analyze.json"

# Determinism: a second crawl with the same seed — forced down to a single
# site worker, against the first run's default pool — must export the same
# bytes for the dataset and both trace forms.
"$CRAWL" -sites 5 -pages 2 -seed 7 -progress 0 -site-workers 1 \
    -o "$WORKDIR/ds2.jsonl" \
    -trace "$WORKDIR/trace2.json" -trace-jsonl "$WORKDIR/trace2.jsonl" \
    2>/dev/null
cmp -s "$WORKDIR/ds.jsonl" "$WORKDIR/ds2.jsonl" || {
    echo "dataset differs between site-worker counts"; exit 1; }
cmp -s "$WORKDIR/trace.json" "$WORKDIR/trace2.json" || {
    echo "Chrome trace differs between identical runs"; exit 1; }
cmp -s "$WORKDIR/trace.jsonl" "$WORKDIR/trace2.jsonl" || {
    echo "span JSONL differs between identical runs"; exit 1; }

echo "trace-smoke: OK"
