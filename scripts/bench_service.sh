#!/bin/sh
# bench_service.sh — record the job service's load/autoscaling behavior
# as machine-readable JSON, via the deterministic loadgen simulator.
#
# Each scenario is one seeded sim run of cmd/loadgen -json; because sim
# mode is a pure function of (config, seed), BENCH_service.json is
# byte-reproducible across machines — these are capacity numbers, not
# wall-clock benchmarks. The JSON shape is guarded by
# TestBenchServiceJSONWellFormed, and EXPERIMENTS.md quotes the table.
#
# Usage: sh scripts/bench_service.sh [out.json]
set -eu

GO="${GO:-go}"
OUT="${1:-BENCH_service.json}"

"$GO" build -o ./bench-service-bin ./cmd/loadgen
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR" ./bench-service-bin' EXIT

# steady-poisson: a memoryless 20/s stream a small pool absorbs.
cat >"$WORKDIR/steady-poisson.json" <<'EOF'
{
  "seed": 11, "arrival": "poisson", "rate_per_sec": 20, "duration_ms": 30000,
  "mix": {"cached_share": 0.3},
  "service": {"min_workers": 1, "max_workers": 4, "queue_depth": 16,
              "job_base_us": 20000, "job_per_visit_us": 4000},
  "slo": {"queue_wait_p95_ms": 1000, "e2e_p99_ms": 3000, "max_rejected_share": 0.05,
          "min_cache_hit_ratio": 0.1}
}
EOF

# burst-autoscale: the golden 3s-on/9s-off burst that forces the pool
# both up and down (same scenario the determinism tests pin).
cat >"$WORKDIR/burst-autoscale.json" <<'EOF'
{
  "seed": 42, "arrival": "burst", "rate_per_sec": 60,
  "burst_on_ms": 3000, "burst_off_ms": 9000, "duration_ms": 40000,
  "mix": {"cached_share": 0.3, "fault_light_share": 0.2, "fault_heavy_share": 0.1, "sharded_share": 0.1},
  "service": {"min_workers": 1, "max_workers": 6, "queue_depth": 32,
              "job_base_us": 20000, "job_per_visit_us": 4000,
              "scaler": {"up_cooldown_ms": 500, "down_cooldown_ms": 2000, "down_stable_ms": 1000}},
  "slo": {"queue_wait_p95_ms": 2000, "e2e_p99_ms": 5000, "max_rejected_share": 0.2,
          "min_cache_hit_ratio": 0.05}
}
EOF

# closed-loop: 8 clients with think time; the loop self-limits, so the
# queue never rejects and latency stays flat.
cat >"$WORKDIR/closed-loop.json" <<'EOF'
{
  "seed": 7, "loop": "closed", "clients": 8, "think_ms": 100, "duration_ms": 30000,
  "mix": {"cached_share": 0.5},
  "service": {"min_workers": 1, "max_workers": 4, "queue_depth": 16,
              "job_base_us": 30000, "job_per_visit_us": 2000},
  "slo": {"queue_wait_p95_ms": 500, "max_rejected_share": 0.0001, "min_cache_hit_ratio": 0.2}
}
EOF

# overload-reject: a fixed 50/s stream into a pool capped at 2 workers
# with a shallow queue — the backpressure path, 429s by design.
cat >"$WORKDIR/overload-reject.json" <<'EOF'
{
  "seed": 3, "arrival": "fixed", "rate_per_sec": 50, "duration_ms": 20000,
  "service": {"min_workers": 1, "max_workers": 2, "queue_depth": 8,
              "job_base_us": 100000, "job_per_visit_us": 2000},
  "slo": {"queue_wait_p95_ms": 5000}
}
EOF

SCENARIOS="steady-poisson burst-autoscale closed-loop overload-reject"
for NAME in $SCENARIOS; do
    # Exit 3 is "ran fine, an SLO target failed" — still a valid report
    # (overload-reject is expected to miss targets; that is the point).
    ./bench-service-bin -config "$WORKDIR/$NAME.json" -json >"$WORKDIR/$NAME.out" || {
        code=$?
        [ "$code" -eq 3 ] || { echo "bench-service: $NAME exited $code"; exit 1; }
    }
done

{
    printf '{\n  "scenarios": [\n'
    FIRST=1
    for NAME in $SCENARIOS; do
        [ "$FIRST" -eq 1 ] || printf ',\n'
        FIRST=0
        printf '    {"name": "%s", "report": ' "$NAME"
        cat "$WORKDIR/$NAME.out"
        printf '}'
    done
    printf '\n  ]\n}\n'
} >"$OUT"
echo "bench-service: wrote $OUT"
