#!/bin/sh
# Smoke test for cmd/loadgen, both modes.
#
# Sim: run the golden burst scenario twice and require byte-identical
# reports (the determinism contract the golden tests pin, re-checked at
# the CLI boundary) plus a PASS verdict. Live: boot cmd/serve with an
# autoscaling pool on an ephemeral port, drive it closed-loop for a
# couple of seconds, and require a live-mode report with traffic in it
# and a clean SIGINT drain.
#
# Usage: scripts/loadgen_smoke.sh [loadgen-binary] [serve-binary]
set -eu

LOADGEN=${1:-./loadgen}
SERVE=${2:-./serve}
WORKDIR=$(mktemp -d)
LOG="$WORKDIR/serve.log"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT
PID=""

CFG="$WORKDIR/golden.json"
cat >"$CFG" <<'EOF'
{
  "seed": 42, "arrival": "burst", "rate_per_sec": 60,
  "burst_on_ms": 3000, "burst_off_ms": 9000, "duration_ms": 40000,
  "mix": {"cached_share": 0.3, "fault_light_share": 0.2, "fault_heavy_share": 0.1, "sharded_share": 0.1},
  "service": {
    "min_workers": 1, "max_workers": 6, "queue_depth": 32,
    "job_base_us": 20000, "job_per_visit_us": 4000,
    "scaler": {"up_cooldown_ms": 500, "down_cooldown_ms": 2000, "down_stable_ms": 1000}
  },
  "slo": {"queue_wait_p95_ms": 2000, "e2e_p99_ms": 5000, "max_rejected_share": 0.2, "min_cache_hit_ratio": 0.05}
}
EOF

"$LOADGEN" -config "$CFG" >"$WORKDIR/run1.txt"
"$LOADGEN" -config "$CFG" >"$WORKDIR/run2.txt"
cmp -s "$WORKDIR/run1.txt" "$WORKDIR/run2.txt" || {
    echo "sim reports differ across identical runs:"
    diff "$WORKDIR/run1.txt" "$WORKDIR/run2.txt" || true
    exit 1
}
grep -q "overall: PASS" "$WORKDIR/run1.txt" || {
    echo "golden scenario failed its SLO:"; cat "$WORKDIR/run1.txt"; exit 1; }
grep -q -- "--- autoscaling" "$WORKDIR/run1.txt" || {
    echo "report has no autoscaling section"; exit 1; }

# Live mode against a freshly booted autoscaling server.
"$SERVE" -addr 127.0.0.1:0 -workers 1 -min-workers 1 -max-workers 4 >"$LOG" 2>&1 &
PID=$!
BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/^serving on \(http:\/\/[^ ]*\).*/\1/p' "$LOG" | head -n1)
    [ -n "$BASE" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "serve died at startup:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "serve never printed its address:"; cat "$LOG"; exit 1; }

"$LOADGEN" -target "$BASE" -loop closed -clients 2 -duration-ms 2000 -json \
    >"$WORKDIR/live.json" || {
    code=$?
    # 3 means the run finished but missed an SLO target; with no targets
    # configured here anything non-zero is a real failure.
    echo "live run exited $code:"; cat "$WORKDIR/live.json"; cat "$LOG"; exit 1
}
grep -q '"mode": "live"' "$WORKDIR/live.json" || {
    echo "live report is not live-mode:"; cat "$WORKDIR/live.json"; exit 1; }
grep -q '"submitted": 0' "$WORKDIR/live.json" && {
    echo "live run submitted nothing:"; cat "$WORKDIR/live.json"; exit 1; }

kill -INT "$PID"
if ! wait "$PID"; then
    echo "serve exited non-zero on shutdown:"; cat "$LOG"; exit 1
fi
PID=""
grep -q "drained cleanly" "$LOG" || { echo "no clean drain:"; cat "$LOG"; exit 1; }
echo "loadgen-smoke: OK (sim deterministic, live $BASE)"
