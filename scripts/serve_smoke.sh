#!/bin/sh
# Smoke test for cmd/serve: boot the job server on an ephemeral port,
# submit a tiny measurement job over HTTP, poll it to completion, assert
# the report artifact is served with 200 and is non-empty, then shut the
# server down with SIGINT and require a clean drain (exit 0).
#
# Usage: scripts/serve_smoke.sh [path-to-serve-binary]
set -eu

BIN=${1:-./serve}
WORKDIR=$(mktemp -d)
LOG="$WORKDIR/serve.log"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

"$BIN" -addr 127.0.0.1:0 -workers 2 >"$LOG" 2>&1 &
PID=$!

# The banner prints the bound address: "serving on http://127.0.0.1:PORT".
BASE=""
for _ in $(seq 1 100); do
    BASE=$(sed -n 's/^serving on \(http:\/\/[^ ]*\).*/\1/p' "$LOG" | head -n1)
    [ -n "$BASE" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "serve died at startup:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$BASE" ] || { echo "serve never printed its address:"; cat "$LOG"; exit 1; }

curl -fsS "$BASE/healthz" >/dev/null

SUBMIT=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"seed": 3, "sites": 5, "pages_per_site": 2}' "$BASE/v1/jobs")
JOB=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "submit returned no job id: $SUBMIT"; exit 1; }

STATE=""
for _ in $(seq 1 300); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB")
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|canceled) echo "job ended $STATE: $STATUS"; exit 1 ;;
    esac
    sleep 0.1
done
[ "$STATE" = "done" ] || { echo "job never finished (state '$STATE')"; exit 1; }

# The report must come back 200 and non-empty (-f fails on non-2xx).
REPORT="$WORKDIR/report.txt"
curl -fsS "$BASE/v1/jobs/$JOB/report" -o "$REPORT"
[ -s "$REPORT" ] || { echo "report artifact is empty"; exit 1; }
grep -q "Table 2" "$REPORT" || { echo "report artifact looks wrong"; exit 1; }

# A resubmission of the identical spec must be a cache hit on /metrics.
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"seed": 3, "sites": 5, "pages_per_site": 2}' "$BASE/v1/jobs" >/dev/null
curl -fsS "$BASE/metrics" | grep -q '^service_cache_hits 1$' || {
    echo "cache hit not visible on /metrics"; exit 1; }

kill -INT "$PID"
if ! wait "$PID"; then
    echo "serve exited non-zero on shutdown:"; cat "$LOG"; exit 1
fi
grep -q "drained cleanly" "$LOG" || { echo "no clean drain:"; cat "$LOG"; exit 1; }
echo "serve-smoke: OK ($BASE, job $JOB)"
