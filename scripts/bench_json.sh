#!/bin/sh
# bench_json.sh — run the tree-diff hot-path benchmarks and record the
# numbers as machine-readable JSON.
#
# Parses `go test -bench -benchmem` text output into one JSON object per
# benchmark (name, iterations, ns_per_op, b_per_op, allocs_per_op) so
# perf regressions can be diffed across PRs without eyeballing terminal
# output. Written with awk only — no extra tooling in the image.
#
# Usage: sh scripts/bench_json.sh [out.json]
set -e

GO="${GO:-go}"
OUT="${1:-BENCH_treediff.json}"
PACKAGES="./internal/treediff ./internal/stats"
PATTERN='^(BenchmarkCompare|BenchmarkDepthSimilarity|BenchmarkPairwiseJaccard)$'

raw=$("$GO" test -run '^$' -bench "$PATTERN" -benchmem $PACKAGES)
echo "$raw"

echo "$raw" | awk '
BEGIN { print "{"; print "  \"benchmarks\": ["; n = 0 }
/^Benchmark/ {
    # Benchmark lines look like:
    #   BenchmarkCompare/medium-8  10000  110407 ns/op  128352 B/op  119 allocs/op
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n > 0) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    if (bytes != "") printf ", \"b_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
    n++
}
END {
    if (n > 0) printf "\n"
    print "  ]"
    print "}"
    if (n == 0) exit 1
}
' > "$OUT"

echo "bench_json: $(grep -c '"name"' "$OUT") benchmarks written to $OUT"
