#!/bin/sh
# Smoke test for the distributed shard-and-merge pipeline: boot two shard
# worker servers and one coordinator pointed at them, submit the same tiny
# experiment once unsharded (on a worker) and once as a 2-shard
# coordinator job, and require the report/result.json/result.csv bytes to
# be identical — the end-to-end, multi-process form of the golden 1-vs-N
# determinism suite. Finally every server must drain cleanly on SIGINT.
#
# Usage: scripts/shard_smoke.sh [path-to-serve-binary]
set -eu

BIN=${1:-./serve}
WORKDIR=$(mktemp -d)
trap 'kill "$W1" "$W2" "$COORD" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

base_of() {
    log=$1; pid=$2
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/^serving on \(http:\/\/[^ ]*\).*/\1/p' "$log" | head -n1)
        [ -n "$base" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "server died at startup:" >&2; cat "$log" >&2; exit 1; }
        sleep 0.1
    done
    [ -n "$base" ] || { echo "server never printed its address:" >&2; cat "$log" >&2; exit 1; }
    echo "$base"
}

# The servers must be direct children of this shell so `wait` can reap
# them — no command substitution around the boot.
"$BIN" -addr 127.0.0.1:0 -workers 2 >"$WORKDIR/worker1.log" 2>&1 &
W1=$!
"$BIN" -addr 127.0.0.1:0 -workers 2 >"$WORKDIR/worker2.log" 2>&1 &
W2=$!
W1BASE=$(base_of "$WORKDIR/worker1.log" "$W1")
W2BASE=$(base_of "$WORKDIR/worker2.log" "$W2")
"$BIN" -addr 127.0.0.1:0 -workers 2 -shard-workers "$W1BASE,$W2BASE" >"$WORKDIR/coord.log" 2>&1 &
COORD=$!
COORDBASE=$(base_of "$WORKDIR/coord.log" "$COORD")

# submit BASE SPEC — submit a job, poll it to done, echo the job id.
run_job() {
    base=$1; spec=$2
    submit=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$spec" "$base/v1/jobs")
    job=$(printf '%s' "$submit" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    [ -n "$job" ] || { echo "submit returned no job id: $submit" >&2; exit 1; }
    state=""
    for _ in $(seq 1 600); do
        status=$(curl -fsS "$base/v1/jobs/$job")
        state=$(printf '%s' "$status" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        case "$state" in
            done) break ;;
            failed|canceled) echo "job ended $state: $status" >&2; exit 1 ;;
        esac
        sleep 0.1
    done
    [ "$state" = "done" ] || { echo "job never finished (state '$state')" >&2; exit 1; }
    echo "$job"
}

# The same experiment, whole on worker 1 and sharded via the coordinator.
SINGLE=$(run_job "$W1BASE" '{"seed": 3, "sites": 5, "pages_per_site": 2}')
SHARDED=$(run_job "$COORDBASE" '{"seed": 3, "sites": 5, "pages_per_site": 2, "shards": 2}')

for art in report result.json result.csv; do
    curl -fsS "$W1BASE/v1/jobs/$SINGLE/$art" -o "$WORKDIR/single.$art"
    curl -fsS "$COORDBASE/v1/jobs/$SHARDED/$art" -o "$WORKDIR/sharded.$art"
    [ -s "$WORKDIR/single.$art" ] || { echo "$art is empty"; exit 1; }
    cmp -s "$WORKDIR/single.$art" "$WORKDIR/sharded.$art" || {
        echo "$art differs between 1 process and coordinator+2 workers"; exit 1; }
done

# The coordinator must actually have dispatched remotely, not fallen back.
curl -fsS "$COORDBASE/metrics" -o "$WORKDIR/metrics.txt"
grep -q '^service_shard_remote 2$' "$WORKDIR/metrics.txt" || {
    echo "coordinator did not dispatch both shards remotely:";
    grep '^service_shard' "$WORKDIR/metrics.txt" || true; exit 1; }

for pid in "$COORD" "$W1" "$W2"; do
    kill -INT "$pid"
    wait "$pid" || { echo "server $pid exited non-zero on shutdown"; exit 1; }
done
echo "shard-smoke: OK (coordinator $COORDBASE, workers $W1BASE $W2BASE)"
