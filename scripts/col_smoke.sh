#!/bin/sh
# Smoke test for the columnar dataset path: crawl straight to the
# columnar format, round-trip it through JSONL with cmd/convert (must
# reproduce the columnar bytes exactly), and analyze both encodings —
# whole and sharded — requiring byte-identical reports. Also asserts the
# size win and that cmd/analyze refuses a -format assertion that
# contradicts the magic bytes.
#
# Usage: scripts/col_smoke.sh [crawl-binary] [analyze-binary] [convert-binary]
set -eu

CRAWL=${1:-./crawl}
ANALYZE=${2:-./analyze}
CONVERT=${3:-./convert}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

"$CRAWL" -sites 5 -pages 2 -seed 7 -progress 0 -format col -o "$WORKDIR/ds.col" \
    2>"$WORKDIR/crawl.log"

# Lossless round trip: col -> jsonl -> col must reproduce the bytes.
"$CONVERT" -i "$WORKDIR/ds.col" -o "$WORKDIR/ds.jsonl" 2>/dev/null
"$CONVERT" -i "$WORKDIR/ds.jsonl" -o "$WORKDIR/ds2.col" 2>/dev/null
cmp -s "$WORKDIR/ds.col" "$WORKDIR/ds2.col" || {
    echo "col -> jsonl -> col round trip is not byte-identical"; exit 1; }

# The compact format must earn its name.
col_size=$(wc -c < "$WORKDIR/ds.col")
jsonl_size=$(wc -c < "$WORKDIR/ds.jsonl")
[ "$((col_size * 2))" -le "$jsonl_size" ] || {
    echo "columnar file ($col_size B) is not 2x smaller than JSONL ($jsonl_size B)"; exit 1; }

# Both encodings must analyze to the same report, through the streaming
# path and through the sharded footer-index path alike.
"$ANALYZE" -i "$WORKDIR/ds.jsonl" -sites 5 -pages 2 -seed 7 -progress 0 \
    >"$WORKDIR/report.jsonl.txt" 2>/dev/null
"$ANALYZE" -i "$WORKDIR/ds.col" -sites 5 -pages 2 -seed 7 -progress 0 \
    >"$WORKDIR/report.col.txt" 2>/dev/null
cmp -s "$WORKDIR/report.jsonl.txt" "$WORKDIR/report.col.txt" || {
    echo "reports differ between jsonl and col inputs"; exit 1; }
"$ANALYZE" -i "$WORKDIR/ds.col" -shards 3 -sites 5 -pages 2 -seed 7 -progress 0 \
    >"$WORKDIR/report.col-sharded.txt" 2>/dev/null
cmp -s "$WORKDIR/report.jsonl.txt" "$WORKDIR/report.col-sharded.txt" || {
    echo "sharded columnar report differs from the whole-analysis report"; exit 1; }

# A -format assertion contradicting the magic bytes must be refused.
if "$ANALYZE" -i "$WORKDIR/ds.jsonl" -format col -sites 5 -pages 2 -seed 7 \
    -progress 0 >/dev/null 2>&1; then
    echo "analyze accepted -format=col for a jsonl dataset"; exit 1
fi

echo "col-smoke: OK"
