package webmeasure

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestAnalysisByteIdenticalAcrossWorkers is the determinism regression
// test for the sharded analysis pipeline: one crawled dataset, analyzed
// with Workers=1 and Workers=8, must export byte-identical tables,
// figures, JSON bundle, and CSV files. This is a golden comparison of the
// complete export surface, not a spot check — any nondeterminism the
// worker pool introduces (ordering, map iteration, racing accumulators)
// shows up as a diff here.
func TestAnalysisByteIdenticalAcrossWorkers(t *testing.T) {
	const seed, sites, pages = 11, 10, 4
	res, err := Run(context.Background(), Config{Seed: seed, Sites: sites, PagesPerSite: pages})
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := res.WriteDataset(&raw); err != nil {
		t.Fatal(err)
	}

	type export struct {
		report []byte
		json   []byte
		csv    map[string][]byte
	}
	analyzeWith := func(workers int) export {
		t.Helper()
		r, err := LoadAndAnalyze(bytes.NewReader(raw.Bytes()), Config{
			Seed: seed, Sites: sites, PagesPerSite: pages, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var rep, js bytes.Buffer
		r.WriteReport(&rep)
		if err := r.WriteJSON(&js); err != nil {
			t.Fatalf("workers=%d: json: %v", workers, err)
		}
		dir := t.TempDir()
		if err := r.WriteCSVFiles(dir); err != nil {
			t.Fatalf("workers=%d: csv: %v", workers, err)
		}
		csv := map[string][]byte{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			csv[e.Name()] = b
		}
		if len(csv) == 0 {
			t.Fatalf("workers=%d: no CSV files exported", workers)
		}
		return export{report: rep.Bytes(), json: js.Bytes(), csv: csv}
	}

	one := analyzeWith(1)
	eight := analyzeWith(8)

	if !bytes.Equal(one.report, eight.report) {
		t.Errorf("report output differs between workers=1 and workers=8 (%d vs %d bytes)",
			len(one.report), len(eight.report))
	}
	if !bytes.Equal(one.json, eight.json) {
		t.Errorf("JSON bundle differs between workers=1 and workers=8 (%d vs %d bytes)",
			len(one.json), len(eight.json))
	}
	names := func(m map[string][]byte) []string {
		var out []string
		for n := range m {
			out = append(out, n)
		}
		sort.Strings(out)
		return out
	}
	oneNames, eightNames := names(one.csv), names(eight.csv)
	if len(oneNames) != len(eightNames) {
		t.Fatalf("CSV file sets differ: %v vs %v", oneNames, eightNames)
	}
	for i, n := range oneNames {
		if eightNames[i] != n {
			t.Fatalf("CSV file sets differ: %v vs %v", oneNames, eightNames)
		}
		if !bytes.Equal(one.csv[n], eight.csv[n]) {
			t.Errorf("CSV %s differs between workers=1 and workers=8", n)
		}
	}

	// The end-to-end path (Run with Workers set) must agree with the
	// load-and-analyze path too.
	resW, err := Run(context.Background(), Config{
		Seed: seed, Sites: sites, PagesPerSite: pages, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var repW bytes.Buffer
	resW.WriteReport(&repW)
	if !bytes.Equal(repW.Bytes(), one.report) {
		t.Error("Run(Workers=8) report differs from LoadAndAnalyze(Workers=1)")
	}
}
